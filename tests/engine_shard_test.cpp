// The conservative parallel engine (ISSUE: sharded pending set behind the
// Engine/Scheduler API redesign).
//
//  * EngineOptions: explicit construction, env round-trip via from_env().
//  * Replay drive: the executed (time, seq) sequence is bit-identical for
//    any shard count — sharding is invisible under replay.
//  * Window drive: equivalent to replay for shard-confined workloads,
//    deterministic run-to-run, and conservative — no shard's clock ever
//    escapes the round's floor + lookahead bound.
//  * Cross-shard mailboxes: delivered in deterministic global order;
//    contract violations are counted and clamped, never lost.
//  * pending() counts live events only (cancelled tombstones excluded).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace ugnirt::sim {
namespace {

/// (time, tag) execution log of one run.
using Log = std::vector<std::pair<SimTime, int>>;

/// A shard-confined workload: `chains` event chains, chain c pinned to
/// shard c % shards, each hop advancing by a pseudo-random stride.  Any
/// drive must execute each chain's events in order; equal-time ties
/// across shards are broken by seq.
Log run_chains(const EngineOptions& options, int chains, int hops) {
  Engine e(options);
  Log log;
  for (int c = 0; c < chains; ++c) {
    const int shard = c % e.shards();
    struct Hop {
      Engine* e;
      Log* log;
      int shard, c, hops;
      int i = 0;
      void operator()() {
        Scheduler& s = e->scheduler(shard);
        log->emplace_back(s.now(), c * 1000 + i);
        if (++i < hops) {
          s.schedule_after(((c * 7 + i * 13) % 5) * 10, *this);
        }
      }
    };
    e.scheduler(shard).schedule_at((c * 3) % 7, Hop{&e, &log, shard, c, hops});
  }
  e.run();
  return log;
}

// ----------------------------------------------------------- options ----

TEST(EngineOptions, FromEnvReadsShardKnobs) {
  ::setenv("UGNIRT_SIM_QUEUE", "calendar", 1);
  ::setenv("UGNIRT_SIM_SHARDS", "4", 1);
  ::setenv("UGNIRT_SIM_LOOKAHEAD_NS", "250", 1);
  EngineOptions o = EngineOptions::from_env();
  ::unsetenv("UGNIRT_SIM_QUEUE");
  ::unsetenv("UGNIRT_SIM_SHARDS");
  ::unsetenv("UGNIRT_SIM_LOOKAHEAD_NS");
  EXPECT_EQ(o.queue, QueueKind::kCalendar);
  EXPECT_EQ(o.shards, 4);
  EXPECT_EQ(o.lookahead_ns, 250);

  Engine e(o);
  EXPECT_EQ(e.queue_kind(), QueueKind::kCalendar);
  EXPECT_EQ(e.shards(), 4);
  EXPECT_EQ(e.lookahead(), 250);
}

TEST(EngineOptions, DefaultsAreHermeticSequential) {
  ::setenv("UGNIRT_SIM_SHARDS", "16", 1);
  Engine e{EngineOptions{}};  // must NOT sniff the environment
  ::unsetenv("UGNIRT_SIM_SHARDS");
  EXPECT_EQ(e.shards(), 1);
  EXPECT_EQ(e.queue_kind(), QueueKind::kHeap);
  EXPECT_EQ(e.mode(), DriveMode::kReplay);
}

TEST(EngineOptions, DegenerateValuesAreClamped) {
  EngineOptions o;
  o.shards = -3;
  o.lookahead_ns = 0;  // would deadlock a window round
  o.threads = 99;
  Engine e(o);
  EXPECT_EQ(e.shards(), 1);
  EXPECT_GE(e.lookahead(), 1);
}

// ------------------------------------------------------ replay drive ----

TEST(ShardedReplay, ExecutionIsBitIdenticalAcrossShardCounts) {
  for (QueueKind queue : {QueueKind::kHeap, QueueKind::kCalendar}) {
    EngineOptions o;
    o.queue = queue;
    o.shards = 1;
    const Log reference = run_chains(o, 24, 40);
    EXPECT_EQ(reference.size(), 24u * 40u);
    for (int shards : {2, 3, 8}) {
      o.shards = shards;
      EXPECT_EQ(reference, run_chains(o, 24, 40))
          << to_string(queue) << " shards=" << shards;
    }
  }
}

TEST(ShardedReplay, CrossShardSchedulingKeepsGlobalOrder) {
  EngineOptions o;
  o.shards = 4;
  Engine e(o);
  Log log;
  // Every event on shard s schedules the next on shard (s+1)%4 at the
  // SAME time: replay must still run them in scheduling (seq) order.
  struct Ring {
    Engine* e;
    Log* log;
    int s, i;
    void operator()() {
      log->emplace_back(e->scheduler(s).now(), i);
      if (i < 20) {
        e->scheduler((s + 1) % 4).schedule_at(e->now(), Ring{e, log, (s + 1) % 4, i + 1});
      }
    }
  };
  e.scheduler(0).schedule_at(5, Ring{&e, &log, 0, 0});
  e.run();
  ASSERT_EQ(log.size(), 21u);
  for (int i = 0; i <= 20; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)], std::make_pair(SimTime{5}, i));
  }
  EXPECT_EQ(e.cross_shard_events(), 20u);
}

// ------------------------------------------------------ window drive ----

TEST(WindowDrive, MatchesReplayForShardConfinedWork) {
  for (QueueKind queue : {QueueKind::kHeap, QueueKind::kCalendar}) {
    EngineOptions o;
    o.queue = queue;
    o.shards = 8;
    o.mode = DriveMode::kReplay;
    const Log replay = run_chains(o, 24, 40);
    o.mode = DriveMode::kWindow;
    o.lookahead_ns = 50;
    // Same multiset of (time, per-chain-ordered) executions; the global
    // interleaving legitimately differs, so compare sorted.
    Log window = run_chains(o, 24, 40);
    Log replay_sorted = replay;
    std::sort(replay_sorted.begin(), replay_sorted.end());
    std::sort(window.begin(), window.end());
    EXPECT_EQ(replay_sorted, window) << to_string(queue);
  }
}

TEST(WindowDrive, DeterministicRunToRun) {
  EngineOptions o;
  o.shards = 8;
  o.mode = DriveMode::kWindow;
  o.lookahead_ns = 30;
  EXPECT_EQ(run_chains(o, 16, 64), run_chains(o, 16, 64));
}

TEST(WindowDrive, ShardClocksNeverExceedLookaheadBound) {
  EngineOptions o;
  o.shards = 8;
  o.mode = DriveMode::kWindow;
  o.lookahead_ns = 40;
  Engine e(o);
  std::uint64_t checks = 0;
  for (int c = 0; c < 32; ++c) {
    const int shard = c % e.shards();
    struct Hop {
      Engine* eng;
      std::uint64_t* checks;
      int shard, c;
      int i = 0;
      void operator()() {
        // The conservative property: while a round drains, NO shard's
        // clock is past floor + lookahead (exclusive horizon).
        const SimTime bound = eng->round_floor() + eng->lookahead();
        for (int s = 0; s < eng->shards(); ++s) {
          ASSERT_LT(eng->shard_now(s), bound);
        }
        ++*checks;
        if (++i < 50) {
          eng->scheduler(shard).schedule_after(((c + i) % 7) * 9, *this);
        }
      }
    };
    e.scheduler(shard).schedule_at((c * 11) % 13, Hop{&e, &checks, shard, c});
  }
  e.run();
  EXPECT_EQ(checks, 32u * 50u);
  EXPECT_GT(e.rounds(), 1u);
}

TEST(WindowDrive, CrossShardMailboxDeliversInDeterministicOrder) {
  auto run_once = [] {
    EngineOptions o;
    o.shards = 4;
    o.mode = DriveMode::kWindow;
    o.lookahead_ns = 100;
    Engine e(o);
    Log log;
    // Each source shard fires a burst at its peers, honoring the
    // lookahead contract (delay >= lookahead).
    for (int s = 0; s < 4; ++s) {
      e.scheduler(s).schedule_at(s, [&e, &log, s] {
        for (int peer = 0; peer < 4; ++peer) {
          if (peer == s) continue;
          e.scheduler(peer).schedule_after(100 + s, [&e, &log, s, peer] {
            log.emplace_back(e.scheduler(peer).now(), s * 10 + peer);
          });
        }
      });
    }
    e.run();
    EXPECT_EQ(e.cross_shard_events(), 12u);
    EXPECT_EQ(e.lookahead_violations(), 0u);
    return log;
  };
  Log a = run_once();
  EXPECT_EQ(a.size(), 12u);
  EXPECT_EQ(a, run_once());
}

TEST(WindowDrive, LookaheadViolationIsCountedAndClamped) {
  EngineOptions o;
  o.shards = 2;
  o.mode = DriveMode::kWindow;
  o.lookahead_ns = 1000;
  Engine e(o);
  bool peer_ran = false;
  e.scheduler(0).schedule_at(500, [&e, &peer_ran] {
    // Breaks the contract: targets the other shard INSIDE the current
    // window.  Must be counted — and still delivered (clamped to the
    // peer's clock at the barrier), never dropped.
    e.scheduler(1).schedule_after(1, [&peer_ran] { peer_ran = true; });
  });
  const std::uint64_t ran = e.run();
  EXPECT_EQ(ran, 2u);
  EXPECT_TRUE(peer_ran);
  EXPECT_EQ(e.lookahead_violations(), 1u);
}

TEST(WindowDrive, ThreadedDrainMatchesSerial) {
  // The TSan target: worker threads drain disjoint shards inside a round.
  // The workload is shard-confined with per-shard logs, so the only shared
  // engine state is what the engine itself synchronizes.
  auto run_threaded = [](int threads) {
    EngineOptions o;
    o.shards = 8;
    o.mode = DriveMode::kWindow;
    o.lookahead_ns = 60;
    o.threads = threads;
    Engine e(o);
    std::vector<Log> logs(8);
    std::atomic<std::uint64_t> fired{0};
    for (int c = 0; c < 32; ++c) {
      const int shard = c % 8;
      struct Hop {
        Engine* eng;
        Log* log;
        std::atomic<std::uint64_t>* fired;
        int shard, c;
        int i = 0;
        void operator()() {
          log->emplace_back(eng->scheduler(shard).now(), c * 1000 + i);
          fired->fetch_add(1, std::memory_order_relaxed);
          if (++i < 40) {
            eng->scheduler(shard).schedule_after(((c * 5 + i) % 6) * 11,
                                                 *this);
          }
        }
      };
      e.scheduler(shard).schedule_at(c % 5,
                                     Hop{&e, &logs[static_cast<std::size_t>(
                                                 shard)],
                                         &fired, shard, c});
    }
    e.run();
    EXPECT_EQ(fired.load(), 32u * 40u);
    return logs;
  };
  EXPECT_EQ(run_threaded(0), run_threaded(4));
}

// ------------------------------------------------- pending() accuracy ----

TEST(Pending, ExcludesCancelledTombstones) {
  Engine e{EngineOptions{}};
  auto h1 = e.schedule_at(10, [] {});
  auto h2 = e.schedule_at(20, [] {});
  e.schedule_at(30, [] {});
  EXPECT_EQ(e.pending(), 3u);
  h1.cancel();
  EXPECT_EQ(e.pending(), 2u);
  h1.cancel();  // double-cancel must not double-decrement
  EXPECT_EQ(e.pending(), 2u);
  (void)h2;
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.run(), 2u);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Pending, SelfCancelDuringExecutionStaysConsistent) {
  Engine e{EngineOptions{}};
  EventHandle h;
  h = e.schedule_at(10, [&e, &h] {
    h.cancel();  // cancelling the event that is firing: no-op
    EXPECT_EQ(e.pending(), 0u);
  });
  EXPECT_EQ(e.run(), 1u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Pending, SumsLiveEventsAcrossShards) {
  EngineOptions o;
  o.shards = 4;
  Engine e(o);
  std::vector<EventHandle> handles;
  for (int s = 0; s < 4; ++s) {
    handles.push_back(e.scheduler(s).schedule_at(10 + s, [] {}));
    e.scheduler(s).schedule_at(20 + s, [] {});
  }
  EXPECT_EQ(e.pending(), 8u);
  for (auto& h : handles) h.cancel();
  EXPECT_EQ(e.pending(), 4u);
  EXPECT_EQ(e.run(), 4u);
  EXPECT_TRUE(e.empty());
}

// ------------------------------------------------ run control, sharded ----

TEST(ShardedRun, RunUntilAdvancesAllShardClocks) {
  for (DriveMode mode : {DriveMode::kReplay, DriveMode::kWindow}) {
    EngineOptions o;
    o.shards = 4;
    o.mode = mode;
    o.lookahead_ns = 25;
    Engine e(o);
    std::vector<SimTime> fired;
    for (int s = 0; s < 4; ++s) {
      for (SimTime t : {10, 20, 30, 40}) {
        e.scheduler(s).schedule_at(t + s, [&fired, &e] {
          fired.push_back(e.now());
        });
      }
    }
    e.run_until(25);
    EXPECT_EQ(fired.size(), 8u) << to_string(mode);  // 10..13, 20..23
    EXPECT_EQ(e.now(), 25) << to_string(mode);
    e.run_until(1000);
    EXPECT_EQ(fired.size(), 16u) << to_string(mode);
  }
}

TEST(ShardedRun, StopInterruptsAndResumes) {
  EngineOptions o;
  o.shards = 2;
  Engine e(o);
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.scheduler(i % 2).schedule_at(i * 10, [&] {
      if (++count == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending(), 7u);
  e.run();
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace ugnirt::sim
