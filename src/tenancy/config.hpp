// Multi-tenancy configuration.
//
// Lives in its own header so converse/machine.hpp can embed it in
// MachineOptions without pulling in the JobManager/generator machinery.
// Keys live under "tenancy.*" and are overridable via UGNIRT_TENANCY_*
// environment variables; `lrts::make_machine` applies them automatically,
// same as the gemini/fault/retry/agg/flow knobs.
//
// Every default preserves stock behavior bit-for-bit: with `enable`
// false no JobManager is constructed and nothing in the send path even
// looks at this struct.
#pragma once

#include <cstdint>
#include <string>

#include "util/config.hpp"

namespace ugnirt::tenancy {

struct TenancyConfig {
  /// Master switch (UGNIRT_TENANCY_ENABLE).  Off by default: the paper's
  /// runs own the whole machine, and drivers that want tenancy construct
  /// a JobManager explicitly.
  bool enable = false;

  /// Placement policy for every job's PE allocation
  /// (UGNIRT_TENANCY_PLACEMENT): "compact" (contiguous slab), "scatter"
  /// (round-robin deal across the PE space) or "random" (seeded shuffle —
  /// the fragmented allocations Jha et al. measure on production Gemini
  /// systems).
  std::string placement = "compact";

  /// Seed for the "random" placement shuffle (UGNIRT_TENANCY_SEED).
  /// 0 derives it from the machine seed so one knob reseeds everything.
  std::uint64_t seed = 0;

  /// Declarative job list (UGNIRT_TENANCY_JOBS): comma-separated
  /// `name:qos:pes` triples, e.g. "victim:latency:8,storm:bulk:24".
  /// Empty means jobs are added programmatically via JobManager::add_job.
  std::string jobs;

  /// Enforce per-job QoS classes in the InjectionGovernor
  /// (UGNIRT_TENANCY_QOS_ENABLE).  Requires flow.enable — without a
  /// governor there is no window to bound; JobManager::place then skips
  /// QoS silently (the A/B the multitenant ablation measures).
  bool qos_enable = true;

  /// latency-class AIMD window floor (UGNIRT_TENANCY_QOS_LATENCY_FLOOR):
  /// hotspot backoff cannot shrink a latency job's window below this.
  std::uint32_t qos_latency_floor = 8;

  /// bulk-class window ceiling and per-drain-pass deferred-GET quota
  /// (UGNIRT_TENANCY_QOS_BULK_CEILING / _QUOTA).
  std::uint32_t qos_bulk_ceiling = 8;
  std::uint32_t qos_bulk_quota = 2;

  /// scavenger-class ceiling/quota (UGNIRT_TENANCY_QOS_SCAVENGER_CEILING
  /// / _QUOTA): background jobs that only soak up idle capacity.
  std::uint32_t qos_scavenger_ceiling = 2;
  std::uint32_t qos_scavenger_quota = 1;

  /// Read "tenancy.*" keys, falling back to the defaults above.
  static TenancyConfig from(const Config& cfg);
  /// Write every knob back as "tenancy.*" (for env-override round trips).
  void export_to(Config& cfg) const;
  /// The "tenancy.*" key list, for Config::apply_env_overrides.
  static const char* const* config_keys(std::size_t* count);
};

}  // namespace ugnirt::tenancy
