# Empty dependencies file for ugnirt_ugni.
# This may be replaced when dependencies are built.
