// Execution context of a simulated processing element (PE).
//
// CHARM++ handlers run to completion, so while a PE executes, virtual time
// advances through a *cursor* held in its Context: runtime code calls
// charge() for modeled CPU costs (memory registration, memcpy, MPI library
// overhead, ...) and application code calls charge_app() for its modeled
// compute.  The uGNI/MPI emulation layers find the caller's context through
// sim::current() — mirroring how the real APIs implicitly run on the calling
// core — which keeps the emulated signatures close to Cray's.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace ugnirt::sim {

/// What a slice of charged time represents; consumed by the tracer to build
/// the paper's Figure 12 style utilization profiles.
enum class CostKind : std::uint8_t {
  kOverhead = 0,  // runtime/communication bookkeeping (black in Projections)
  kApp = 1,       // useful application compute (yellow in Projections)
};

class Context {
 public:
  Context(Scheduler& sched, int pe)
      : sched_(&sched), pe_(pe), cursor_(sched.now()) {}

  /// The scheduling domain this PE lives in (its engine shard).  The
  /// narrow Scheduler surface on purpose: context holders charge time and
  /// schedule events, they never drive the engine.
  Scheduler& scheduler() const { return *sched_; }
  int pe() const { return pe_; }

  /// Current local virtual time of this PE (>= engine time while running).
  SimTime now() const { return cursor_; }

  /// Reset the cursor at the start of a scheduler step.
  void set_now(SimTime t) { cursor_ = t; }

  /// Advance the cursor by a modeled runtime cost.
  void charge(SimTime ns);

  /// Advance the cursor by modeled application compute.
  void charge_app(SimTime ns) {
    assert(ns >= 0);
    cursor_ += ns;
    app_total_ += ns;
  }

  /// Jump the cursor forward to `t` (used by blocking waits: the PE spins
  /// until a completion whose virtual timestamp is already known).
  void wait_until(SimTime t);

  SimTime overhead_total() const { return overhead_total_; }
  SimTime app_total() const { return app_total_; }

 private:
  Scheduler* sched_;
  int pe_;
  SimTime cursor_;
  SimTime overhead_total_ = 0;
  SimTime app_total_ = 0;
};

/// The context of the PE currently executing, or nullptr outside a step.
/// Single-threaded simulation, so a plain global suffices.
Context* current();

/// RAII guard installing a context as current for the duration of a step.
class ScopedContext {
 public:
  explicit ScopedContext(Context& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context* prev_;
};

}  // namespace ugnirt::sim
