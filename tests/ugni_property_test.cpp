// Property-style tests of the uGNI emulation: randomized transaction
// streams across several NICs must preserve data, ordering guarantees, and
// accounting invariants.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "ugni/ugni.hpp"
#include "util/rng.hpp"

namespace ugnirt::ugni {
namespace {

class UgniPropertyFixture : public ::testing::Test {
 protected:
  static constexpr int kNics = 4;

  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(8), gemini::MachineConfig{});
    dom_ = std::make_unique<Domain>(*net_);
    for (int i = 0; i < kNics; ++i) {
      ctx_.push_back(std::make_unique<sim::Context>(engine_.scheduler(), i));
      sim::ScopedContext g(*ctx_.back());
      ASSERT_EQ(GNI_CdmAttach(dom_.get(), i, i % 4, &nic_[i]),
                GNI_RC_SUCCESS);
      ASSERT_EQ(GNI_CqCreate(nic_[i], 1 << 14, &rx_[i]), GNI_RC_SUCCESS);
      ASSERT_EQ(GNI_CqCreate(nic_[i], 1 << 14, &tx_[i]), GNI_RC_SUCCESS);
      nic_[i]->set_smsg_rx_cq(rx_[i]);
    }
    for (int a = 0; a < kNics; ++a) {
      for (int b = 0; b < kNics; ++b) {
        if (a == b) continue;
        sim::ScopedContext g(*ctx_[static_cast<std::size_t>(a)]);
        ASSERT_EQ(GNI_EpCreate(nic_[a], tx_[a], &ep_[a][b]), GNI_RC_SUCCESS);
        ASSERT_EQ(GNI_EpBind(ep_[a][b], b), GNI_RC_SUCCESS);
        gni_smsg_attr_t attr;
        attr.mbox_maxcredit = 64;
        ASSERT_EQ(GNI_SmsgInit(ep_[a][b], attr, attr), GNI_RC_SUCCESS);
      }
    }
  }

  sim::Context& ctx(int i) { return *ctx_[static_cast<std::size_t>(i)]; }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<Domain> dom_;
  std::vector<std::unique_ptr<sim::Context>> ctx_;
  gni_nic_handle_t nic_[kNics] = {};
  gni_cq_handle_t rx_[kNics] = {}, tx_[kNics] = {};
  gni_ep_handle_t ep_[kNics][kNics] = {};
};

TEST_F(UgniPropertyFixture, RandomSmsgStreamsArriveIntactAndFifoPerPair) {
  Rng rng(4242);
  std::map<std::pair<int, int>, std::vector<std::uint32_t>> sent;
  // Senders fire random tagged sequence numbers at random peers.
  for (int round = 0; round < 200; ++round) {
    int from = static_cast<int>(rng.next_below(kNics));
    int to = static_cast<int>(rng.next_below(kNics));
    if (from == to) continue;
    sim::ScopedContext g(ctx(from));
    std::uint32_t payload[2] = {static_cast<std::uint32_t>(round),
                                rng.next_u64() ? 0xABCD0000u + static_cast<std::uint32_t>(round) : 0u};
    gni_return_t rc = GNI_SmsgSendWTag(ep_[from][to], payload,
                                       sizeof(payload), nullptr, 0, 0, 3);
    if (rc == GNI_RC_NOT_DONE) continue;  // out of credits: skip
    ASSERT_EQ(rc, GNI_RC_SUCCESS);
    sent[{from, to}].push_back(payload[0]);
  }
  engine_.run();
  // Drain every receiver and check per-pair FIFO of sequence numbers.
  std::map<std::pair<int, int>, std::vector<std::uint32_t>> got;
  for (int to = 0; to < kNics; ++to) {
    sim::ScopedContext g(ctx(to));
    ctx(to).wait_until(engine_.now() + 1'000'000'000);
    for (;;) {
      gni_cq_entry_t ev;
      if (GNI_CqGetEvent(rx_[to], &ev) != GNI_RC_SUCCESS) break;
      ASSERT_EQ(ev.type, CqEventType::kSmsg);
      void* data = nullptr;
      std::uint8_t tag = 0;
      ASSERT_EQ(GNI_SmsgGetNextWTag(ep_[to][ev.source_inst], &data, &tag),
                GNI_RC_SUCCESS);
      EXPECT_EQ(tag, 3);
      std::uint32_t seq;
      std::memcpy(&seq, data, sizeof(seq));
      got[{ev.source_inst, to}].push_back(seq);
      ASSERT_EQ(GNI_SmsgRelease(ep_[to][ev.source_inst]), GNI_RC_SUCCESS);
    }
  }
  EXPECT_EQ(got, sent);
}

TEST_F(UgniPropertyFixture, RandomRdmaMatrixMovesExactBytes) {
  Rng rng(99);
  constexpr std::size_t kRegion = 1 << 16;
  std::vector<std::vector<std::uint8_t>> mem(kNics);
  gni_mem_handle_t hndl[kNics];
  for (int i = 0; i < kNics; ++i) {
    mem[static_cast<std::size_t>(i)].resize(kRegion);
    for (std::size_t b = 0; b < kRegion; ++b) {
      mem[static_cast<std::size_t>(i)][b] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
    sim::ScopedContext g(ctx(i));
    ASSERT_EQ(
        GNI_MemRegister(nic_[i],
                        reinterpret_cast<std::uint64_t>(
                            mem[static_cast<std::size_t>(i)].data()),
                        kRegion, rx_[i], 0, &hndl[i]),
        GNI_RC_SUCCESS);
  }
  // Shadow model of every region.
  auto shadow = mem;

  for (int round = 0; round < 120; ++round) {
    int from = static_cast<int>(rng.next_below(kNics));
    int to = static_cast<int>(rng.next_below(kNics));
    if (from == to) continue;
    bool is_get = rng.next_below(2) == 0;
    bool is_bte = rng.next_below(2) == 0;
    std::uint32_t len = 8u << rng.next_below(10);  // 8 B .. 4 KiB
    std::uint32_t loff = rng.next_below(kRegion - len);
    std::uint32_t roff = rng.next_below(kRegion - len);

    gni_post_descriptor_t d;
    d.type = is_get ? (is_bte ? GNI_POST_RDMA_GET : GNI_POST_FMA_GET)
                    : (is_bte ? GNI_POST_RDMA_PUT : GNI_POST_FMA_PUT);
    d.local_addr = reinterpret_cast<std::uint64_t>(
        mem[static_cast<std::size_t>(from)].data() + loff);
    d.local_mem_hndl = hndl[from];
    d.remote_addr = reinterpret_cast<std::uint64_t>(
        mem[static_cast<std::size_t>(to)].data() + roff);
    d.remote_mem_hndl = hndl[to];
    d.length = len;
    sim::ScopedContext g(ctx(from));
    ASSERT_EQ(is_bte ? GNI_PostRdma(ep_[from][to], &d)
                     : GNI_PostFma(ep_[from][to], &d),
              GNI_RC_SUCCESS);
    // Mirror in the shadow model.
    auto& lmem = shadow[static_cast<std::size_t>(from)];
    auto& rmem = shadow[static_cast<std::size_t>(to)];
    if (is_get) {
      std::memcpy(lmem.data() + loff, rmem.data() + roff, len);
    } else {
      std::memcpy(rmem.data() + roff, lmem.data() + loff, len);
    }
    // Drain local completion.
    gni_cq_entry_t ev;
    ASSERT_EQ(GNI_CqWaitEvent(tx_[from], &ev), GNI_RC_SUCCESS);
    gni_post_descriptor_t* done = nullptr;
    ASSERT_EQ(GNI_GetCompleted(tx_[from], ev, &done), GNI_RC_SUCCESS);
    ASSERT_EQ(done, &d);
  }
  for (int i = 0; i < kNics; ++i) {
    EXPECT_EQ(mem[static_cast<std::size_t>(i)],
              shadow[static_cast<std::size_t>(i)])
        << "region " << i << " diverged";
  }
}

TEST_F(UgniPropertyFixture, RegistrationAccountingNeverLeaks) {
  Rng rng(7);
  std::vector<std::pair<gni_mem_handle_t, std::size_t>> live;
  std::vector<std::vector<std::uint8_t>> buffers;
  buffers.reserve(200);
  sim::ScopedContext g(ctx(0));
  std::uint64_t expected_bytes = 0;
  for (int round = 0; round < 200; ++round) {
    if (live.empty() || rng.next_below(2) == 0) {
      std::size_t len = 256u << rng.next_below(8);
      buffers.emplace_back(len);
      gni_mem_handle_t h;
      ASSERT_EQ(GNI_MemRegister(
                    nic_[0],
                    reinterpret_cast<std::uint64_t>(buffers.back().data()),
                    len, nullptr, 0, &h),
                GNI_RC_SUCCESS);
      live.emplace_back(h, len);
      expected_bytes += len;
    } else {
      std::size_t idx = rng.next_below(static_cast<std::uint32_t>(live.size()));
      ASSERT_EQ(GNI_MemDeregister(nic_[0], &live[idx].first),
                GNI_RC_SUCCESS);
      expected_bytes -= live[idx].second;
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(nic_[0]->registered_bytes(), expected_bytes);
    ASSERT_EQ(nic_[0]->active_regions(), live.size());
  }
}

TEST_F(UgniPropertyFixture, CqWaitEventReturnsNotDoneOnSilence) {
  sim::ScopedContext g(ctx(0));
  gni_cq_entry_t ev;
  EXPECT_EQ(GNI_CqWaitEvent(rx_[0], &ev), GNI_RC_NOT_DONE);
}

TEST_F(UgniPropertyFixture, ApiParameterValidation) {
  sim::ScopedContext g(ctx(0));
  gni_cq_entry_t ev;
  EXPECT_EQ(GNI_CqGetEvent(nullptr, &ev), GNI_RC_INVALID_PARAM);
  EXPECT_EQ(GNI_CqGetEvent(rx_[0], nullptr), GNI_RC_INVALID_PARAM);
  gni_mem_handle_t h;
  EXPECT_EQ(GNI_MemRegister(nic_[0], 0, 100, nullptr, 0, &h),
            GNI_RC_INVALID_PARAM);
  std::uint8_t buf[8];
  EXPECT_EQ(GNI_MemRegister(nic_[0], reinterpret_cast<std::uint64_t>(buf), 0,
                            nullptr, 0, &h),
            GNI_RC_INVALID_PARAM);
  EXPECT_EQ(GNI_EpBind(ep_[0][1], 2), GNI_RC_INVALID_STATE);  // re-bind
  gni_smsg_attr_t attr;
  EXPECT_EQ(GNI_SmsgInit(ep_[0][1], attr, attr), GNI_RC_INVALID_STATE);
  EXPECT_EQ(gni_err_str(GNI_RC_NOT_DONE), std::string("GNI_RC_NOT_DONE"));
  EXPECT_EQ(gni_err_str(GNI_RC_PERMISSION_ERROR),
            std::string("GNI_RC_PERMISSION_ERROR"));
}

TEST_F(UgniPropertyFixture, DomainAggregatesMailboxMemory) {
  std::uint64_t total = dom_->total_mailbox_bytes();
  // 4 NICs x 3 peers each = 12 mailboxes committed at SetUp.
  EXPECT_GT(total, 0u);
  std::uint64_t per = nic_[0]->mailbox_bytes();
  EXPECT_EQ(total, per * kNics);
}

}  // namespace
}  // namespace ugnirt::ugni
