// Multi-tenancy subsystem tests: TenancyConfig round-trip + clamps + env
// overrides through make_machine, declarative job-spec parsing, placement
// properties (partition/inverse-map invariants for every policy, seeded
// determinism of the random shuffle), QoS classes landing in the
// InjectionGovernor as window bounds + drain quotas, generator message
// accounting, seeded determinism of full two-tenant timelines across
// shard counts and queue backends, the 7-class fault-matrix rerun with
// two tenants (zero loss in both jobs), per-job metrics/link attribution,
// and the tracer's opt-in `job` column.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "converse/machine.hpp"
#include "fault/fault.hpp"
#include "flowcontrol/flowcontrol.hpp"
#include "lrts/runtime.hpp"
#include "tenancy/generators.hpp"
#include "tenancy/tenancy.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "util/config.hpp"

namespace ugnirt {
namespace {

using converse::LayerKind;
using converse::MachineOptions;
using tenancy::GeneratorOptions;
using tenancy::JobManager;
using tenancy::JobSpec;
using tenancy::Placement;
using tenancy::QosClass;
using tenancy::TenancyConfig;
using tenancy::TrafficGenerator;
using tenancy::TrafficPattern;

// ----------------------------------------------------------------- config ----

TEST(TenancyConfig, RoundTrip) {
  TenancyConfig t;
  t.enable = true;
  t.placement = "scatter";
  t.seed = 0xBEEF;
  t.jobs = "victim:latency:8,storm:bulk:24";
  t.qos_enable = false;
  t.qos_latency_floor = 5;
  t.qos_bulk_ceiling = 6;
  t.qos_bulk_quota = 3;
  t.qos_scavenger_ceiling = 4;
  t.qos_scavenger_quota = 2;
  Config cfg;
  t.export_to(cfg);
  TenancyConfig q = TenancyConfig::from(cfg);
  EXPECT_TRUE(q.enable);
  EXPECT_EQ(q.placement, "scatter");
  EXPECT_EQ(q.seed, 0xBEEFu);
  EXPECT_EQ(q.jobs, "victim:latency:8,storm:bulk:24");
  EXPECT_FALSE(q.qos_enable);
  EXPECT_EQ(q.qos_latency_floor, 5u);
  EXPECT_EQ(q.qos_bulk_ceiling, 6u);
  EXPECT_EQ(q.qos_bulk_quota, 3u);
  EXPECT_EQ(q.qos_scavenger_ceiling, 4u);
  EXPECT_EQ(q.qos_scavenger_quota, 2u);
}

// Hostile overrides cannot demote latency jobs to best-effort (floor 0)
// or wedge bulk jobs outright (ceiling 0); junk placements fall back to
// compact instead of aborting the run.
TEST(TenancyConfig, ClampsKeepClassesMeaningful) {
  Config cfg;
  cfg.set("tenancy.qos_latency_floor", "0");
  cfg.set("tenancy.qos_bulk_ceiling", "0");
  cfg.set("tenancy.qos_scavenger_ceiling", "0");
  cfg.set("tenancy.placement", "diagonal");
  TenancyConfig t = TenancyConfig::from(cfg);
  EXPECT_GE(t.qos_latency_floor, 1u);
  EXPECT_GE(t.qos_bulk_ceiling, 1u);
  EXPECT_GE(t.qos_scavenger_ceiling, 1u);
  EXPECT_EQ(t.placement, "compact");
}

TEST(TenancyConfig, EnvOverridesApplyInMakeMachine) {
  ::setenv("UGNIRT_TENANCY_ENABLE", "1", 1);
  ::setenv("UGNIRT_TENANCY_PLACEMENT", "scatter", 1);
  ::setenv("UGNIRT_TENANCY_SEED", "77", 1);
  ::setenv("UGNIRT_TENANCY_JOBS", "a:latency:2,b:scavenger:2", 1);
  ::setenv("UGNIRT_TENANCY_QOS_BULK_CEILING", "5", 1);
  MachineOptions o;
  o.pes = 4;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  ::unsetenv("UGNIRT_TENANCY_ENABLE");
  ::unsetenv("UGNIRT_TENANCY_PLACEMENT");
  ::unsetenv("UGNIRT_TENANCY_SEED");
  ::unsetenv("UGNIRT_TENANCY_JOBS");
  ::unsetenv("UGNIRT_TENANCY_QOS_BULK_CEILING");
  const TenancyConfig& t = m->options().tenancy;
  EXPECT_TRUE(t.enable);
  EXPECT_EQ(t.placement, "scatter");
  EXPECT_EQ(t.seed, 77u);
  EXPECT_EQ(t.jobs, "a:latency:2,b:scavenger:2");
  EXPECT_EQ(t.qos_bulk_ceiling, 5u);
}

// -------------------------------------------------------------- job specs ----

MachineOptions tenant_options(int pes, const std::string& placement,
                              int ppn = 1) {
  MachineOptions o;
  o.layer = LayerKind::kUgni;
  o.pes = pes;
  o.pes_per_node = ppn;
  o.tenancy.enable = true;
  o.tenancy.placement = placement;
  return o;
}

// The declarative UGNIRT_TENANCY_JOBS form pre-loads the job table with
// the same jobs an explicit add_job sequence would.
TEST(TenancyJobs, DeclarativeSpecPreloadsJobs) {
  auto o = tenant_options(8, "compact");
  o.tenancy.jobs = "victim:latency:4,storm:bulk:3,bg:scavenger:1";
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  JobManager jobs(*m, m->options().tenancy);
  ASSERT_EQ(jobs.num_jobs(), 3);
  EXPECT_EQ(jobs.job(0).name(), "victim");
  EXPECT_EQ(jobs.job(0).qos(), QosClass::kLatency);
  EXPECT_EQ(jobs.job(0).size(), 4);
  EXPECT_EQ(jobs.job(1).name(), "storm");
  EXPECT_EQ(jobs.job(1).qos(), QosClass::kBulk);
  EXPECT_EQ(jobs.job(1).size(), 3);
  EXPECT_EQ(jobs.job(2).name(), "bg");
  EXPECT_EQ(jobs.job(2).qos(), QosClass::kScavenger);
  EXPECT_EQ(jobs.job(2).size(), 1);
  jobs.place();
  EXPECT_TRUE(jobs.placed());
}

// -------------------------------------------------------------- placement ----

/// Build a 3-job manager on `pes` PEs under `placement` and return it
/// placed, with its machine kept alive by the caller.
std::unique_ptr<converse::Machine> placed(const std::string& placement,
                                          std::unique_ptr<JobManager>* out,
                                          int pes = 16,
                                          std::uint64_t seed = 0) {
  auto o = tenant_options(pes, placement);
  o.tenancy.seed = seed;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  *out = std::make_unique<JobManager>(*m, m->options().tenancy);
  (*out)->add_job({"a", pes / 4, QosClass::kLatency});
  (*out)->add_job({"b", pes / 2, QosClass::kBulk});
  (*out)->add_job({"c", pes / 4, QosClass::kScavenger});
  (*out)->place();
  return m;
}

/// Partition + inverse-map invariants every placement must uphold: each
/// PE owned by exactly one job, per-job PE lists ascending, and
/// job_of_pe/rank_of_pe inverting Job::pe(r).
void check_partition(const JobManager& jobs, int pes) {
  std::set<int> seen;
  for (int j = 0; j < jobs.num_jobs(); ++j) {
    const tenancy::Job& job = jobs.job(j);
    ASSERT_EQ(static_cast<int>(job.pes().size()), job.size());
    for (int r = 0; r < job.size(); ++r) {
      const int pe = job.pe(r);
      EXPECT_TRUE(seen.insert(pe).second) << "pe " << pe << " double-owned";
      EXPECT_EQ(jobs.job_of_pe(pe), j);
      EXPECT_EQ(jobs.rank_of_pe(pe), r);
      if (r > 0) {
        EXPECT_LT(job.pe(r - 1), pe);
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), pes);
}

TEST(TenancyPlacement, CompactIsContiguousSlabs) {
  std::unique_ptr<JobManager> jobs;
  auto m = placed("compact", &jobs);
  check_partition(*jobs, 16);
  EXPECT_EQ(jobs->placement(), Placement::kCompact);
  for (int j = 0; j < jobs->num_jobs(); ++j) {
    const tenancy::Job& job = jobs->job(j);
    EXPECT_EQ(job.pe(job.size() - 1) - job.pe(0), job.size() - 1)
        << "job " << j << " not contiguous";
  }
}

TEST(TenancyPlacement, ScatterDealsRoundRobin) {
  std::unique_ptr<JobManager> jobs;
  auto m = placed("scatter", &jobs);
  check_partition(*jobs, 16);
  EXPECT_EQ(jobs->placement(), Placement::kScatter);
  // A deal never hands one job a contiguous slab (sizes here are all
  // smaller than the PE count, so strides must exceed 1 somewhere).
  for (int j = 0; j < jobs->num_jobs(); ++j) {
    const tenancy::Job& job = jobs->job(j);
    EXPECT_GT(job.pe(job.size() - 1) - job.pe(0), job.size() - 1)
        << "job " << j << " unexpectedly compact";
  }
}

TEST(TenancyPlacement, RandomIsSeededDeterministic) {
  std::unique_ptr<JobManager> a, b, c;
  auto ma = placed("random", &a, 16, 42);
  auto mb = placed("random", &b, 16, 42);
  auto mc = placed("random", &c, 16, 43);
  check_partition(*a, 16);
  EXPECT_EQ(a->job_map(), b->job_map());  // same seed, same carve
  EXPECT_NE(a->job_map(), c->job_map());  // reseeding moves the carve
}

// --------------------------------------------------------------------- qos ----

// Placing QoS-classed jobs on a flow-controlled machine must bound every
// PE's governor window: latency floors lift the AIMD minimum, bulk and
// scavenger ceilings cap it (clamping the live cwnd down immediately),
// and drain quotas land per PE.
TEST(TenancyQos, ClassesLandInGovernorWindows) {
  auto o = tenant_options(16, "compact");
  o.flow.enable = true;  // window_start 8, window_min 2, window_max 64
  o.tenancy.qos_latency_floor = 12;
  o.tenancy.qos_bulk_ceiling = 4;
  o.tenancy.qos_bulk_quota = 2;
  o.tenancy.qos_scavenger_ceiling = 2;
  o.tenancy.qos_scavenger_quota = 1;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  flowcontrol::InjectionGovernor* gov = m->layer().governor();
  ASSERT_NE(gov, nullptr);
  JobManager jobs(*m, m->options().tenancy);
  jobs.add_job({"lat", 4, QosClass::kLatency});
  jobs.add_job({"blk", 8, QosClass::kBulk});
  jobs.add_job({"scv", 4, QosClass::kScavenger});
  jobs.place();
  for (int pe : jobs.job(0).pes()) {
    EXPECT_GE(gov->window(pe), 12u) << "latency pe " << pe;
    EXPECT_EQ(gov->drain_quota(pe), 0u);  // latency drains unbounded
  }
  for (int pe : jobs.job(1).pes()) {
    EXPECT_LE(gov->window(pe), 4u) << "bulk pe " << pe;
    EXPECT_EQ(gov->drain_quota(pe), 2u);
  }
  for (int pe : jobs.job(2).pes()) {
    EXPECT_LE(gov->window(pe), 2u) << "scavenger pe " << pe;
    EXPECT_EQ(gov->drain_quota(pe), 1u);
  }
}

// qos_enable=false partitions the PE space but leaves the governor
// byte-identical to stock — the ablation's noqos leg.
TEST(TenancyQos, DisabledLeavesGovernorStock) {
  auto o = tenant_options(8, "scatter");
  o.flow.enable = true;
  o.tenancy.qos_enable = false;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  flowcontrol::InjectionGovernor* gov = m->layer().governor();
  ASSERT_NE(gov, nullptr);
  JobManager jobs(*m, m->options().tenancy);
  jobs.add_job({"a", 4, QosClass::kLatency});
  jobs.add_job({"b", 4, QosClass::kScavenger});
  jobs.place();
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_EQ(gov->window(pe), m->options().flow.window_start);
    EXPECT_EQ(gov->drain_quota(pe), 0u);
  }
  m->collect_metrics();
  std::ostringstream csv;
  m->metrics().write_csv(csv);
  EXPECT_EQ(csv.str().find("flow.qos_pes"), std::string::npos);
}

// -------------------------------------------------------------- generators ----

// expected_messages() is the zero-loss oracle; pin the per-pattern
// counting rules it encodes.
TEST(TenancyGenerators, ExpectedMessageFormulas) {
  auto o = tenant_options(12, "compact");
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  JobManager jobs(*m, m->options().tenancy);
  jobs.add_job({"a", 6, QosClass::kLatency});
  jobs.add_job({"b", 4, QosClass::kBulk});
  jobs.add_job({"c", 2, QosClass::kScavenger});
  jobs.place();
  GeneratorOptions halo;
  halo.pattern = TrafficPattern::kKNeighborHalo;
  halo.iterations = 3;
  halo.k = 2;
  TrafficGenerator g1(jobs, 0, halo);
  EXPECT_EQ(g1.expected_messages(), 6u * 2 * 2 * 3);  // n * 2k * it
  GeneratorOptions shuf;
  shuf.pattern = TrafficPattern::kAllToAllShuffle;
  shuf.iterations = 5;
  TrafficGenerator g2(jobs, 1, shuf);
  EXPECT_EQ(g2.expected_messages(), 4u * 3 * 5);  // n * (n-1) * it
  GeneratorOptions ckpt;
  ckpt.pattern = TrafficPattern::kCheckpointBurst;
  ckpt.iterations = 4;
  ckpt.io_ranks = 1;
  TrafficGenerator g3(jobs, 2, ckpt);
  EXPECT_EQ(g3.expected_messages(), 1u * 4);  // (n - io) * it
}

/// One full two-tenant-plus-background run (all three patterns live) with
/// the event tracer on; returns timeline CSV + metrics CSV, the
/// bit-identity witness for the determinism matrix.
std::string traced_tenant_run(sim::QueueKind queue, int shards) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  auto o = tenant_options(16, "scatter", 4);
  o.flow.enable = true;
  o.sim_queue = queue;
  o.sim_shards = shards;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  JobManager jobs(*m, m->options().tenancy);
  jobs.add_job({"victim", 6, QosClass::kLatency});
  jobs.add_job({"storm", 6, QosClass::kBulk});
  jobs.add_job({"ckpt", 4, QosClass::kScavenger});
  jobs.place();
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  GeneratorOptions vo;
  vo.pattern = TrafficPattern::kKNeighborHalo;
  vo.iterations = 3;
  vo.k = 2;
  vo.payload = 2048;
  gens.push_back(std::make_unique<TrafficGenerator>(jobs, 0, vo));
  GeneratorOptions so;
  so.pattern = TrafficPattern::kAllToAllShuffle;
  so.iterations = 2;
  so.payload = 8192;
  gens.push_back(std::make_unique<TrafficGenerator>(jobs, 1, so));
  GeneratorOptions co;
  co.pattern = TrafficPattern::kCheckpointBurst;
  co.iterations = 2;
  co.io_ranks = 1;
  co.payload = 8192;
  gens.push_back(std::make_unique<TrafficGenerator>(jobs, 2, co));
  for (auto& g : gens) g->launch();
  m->run();
  for (auto& g : gens) {
    EXPECT_EQ(g->received(), g->expected_messages()) << "job " << g->job();
  }
  jobs.collect_metrics();
  m->collect_metrics();
  trace::set_tracer(nullptr);
  std::ostringstream out;
  tracer.write_csv(out);
  m->metrics().write_csv(out);
  return out.str();
}

// Same seed => byte-identical virtual-time timelines and metric surfaces
// for every generator, regardless of shard count or queue backend: the
// whole subsystem (placement, QoS, generator randomness) is a pure
// function of the seeds.
TEST(TenancyDeterminism, SameSeedSameTimelineAcrossShardsAndQueues) {
  const std::string base = traced_tenant_run(sim::QueueKind::kHeap, 1);
  EXPECT_NE(base.find("job.0.delivery_us"), std::string::npos);
  EXPECT_EQ(base, traced_tenant_run(sim::QueueKind::kHeap, 8));
  EXPECT_EQ(base, traced_tenant_run(sim::QueueKind::kCalendar, 1));
  EXPECT_EQ(base, traced_tenant_run(sim::QueueKind::kCalendar, 8));
}

// ------------------------------------------------------------ fault matrix ---

// Every fault class the injector models, rerun with TWO tenants sharing
// nodes: retry/backoff must deliver both jobs' traffic exactly once —
// faults plus QoS bounds never turn into message loss for either tenant.
TEST(TenancyFault, MatrixZeroLossWithTwoTenants) {
  struct Case {
    const char* label;
    fault::FaultPlan plan;
  };
  fault::FaultPlan base;
  base.enabled = true;
  base.seed = 0x7E7;
  std::vector<Case> cases;
  {
    Case c{"post_error", base};
    c.plan.p_post_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"reg_error", base};
    c.plan.p_reg_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"smsg_error", base};
    c.plan.p_smsg_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"cq_overrun", base};
    c.plan.p_cq_overrun = 0.05;
    cases.push_back(c);
  }
  {
    Case c{"smsg_starve", base};
    c.plan.p_smsg_starve = 0.2;
    c.plan.smsg_starve_ns = 20000;
    cases.push_back(c);
  }
  {
    Case c{"link_degrade", base};
    c.plan.p_link_degrade = 0.3;
    c.plan.link_slowdown = 8.0;
    cases.push_back(c);
  }
  {
    Case c{"link_blackout", base};
    c.plan.p_link_blackout = 0.2;
    c.plan.link_blackout_ns = 100000;
    cases.push_back(c);
  }
  for (const Case& fc : cases) {
    auto o = tenant_options(8, "scatter", 4);
    o.flow.enable = true;
    o.fault = fc.plan;
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    JobManager jobs(*m, m->options().tenancy);
    jobs.add_job({"victim", 4, QosClass::kLatency});
    jobs.add_job({"storm", 4, QosClass::kBulk});
    jobs.place();
    GeneratorOptions vo;
    vo.pattern = TrafficPattern::kKNeighborHalo;
    vo.iterations = 3;
    vo.k = 2;  // clamped to (4-1)/2 = 1 neighbor each side
    vo.payload = 4096;  // rendezvous-size: the faulted wire carries GETs
    TrafficGenerator vg(jobs, 0, vo);
    GeneratorOptions so;
    so.pattern = TrafficPattern::kAllToAllShuffle;
    so.iterations = 3;
    so.payload = 8192;
    TrafficGenerator sg(jobs, 1, so);
    vg.launch();
    sg.launch();
    m->run();
    EXPECT_EQ(vg.received(), vg.expected_messages()) << fc.label;
    EXPECT_EQ(sg.received(), sg.expected_messages()) << fc.label;
  }
}

// ------------------------------------------------- metrics & attribution ----

// Per-job rows ride the standard registry exports: pes/msgs_executed
// gauges, the delivery histogram with one sample per delivered message,
// and the network's per-job link counters once attribution is installed.
TEST(TenancyMetrics, PerJobRowsAndLinkAttribution) {
  // 32 PEs at 4/node = 8 nodes: each compact job spans two Gemini ASICs,
  // so its traffic actually crosses torus links (ASIC-sibling node pairs
  // bypass them via the Netlink and would never reserve a link).
  auto o = tenant_options(32, "compact", 4);
  o.flow.enable = true;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  JobManager jobs(*m, m->options().tenancy);
  jobs.add_job({"victim", 16, QosClass::kLatency});
  jobs.add_job({"storm", 16, QosClass::kBulk});
  jobs.place();
  GeneratorOptions vo;
  vo.pattern = TrafficPattern::kKNeighborHalo;
  vo.iterations = 2;
  vo.k = 1;
  vo.payload = 2048;
  TrafficGenerator vg(jobs, 0, vo);
  GeneratorOptions so;
  so.pattern = TrafficPattern::kAllToAllShuffle;
  so.iterations = 2;
  so.payload = 8192;
  TrafficGenerator sg(jobs, 1, so);
  vg.launch();
  sg.launch();
  m->run();
  EXPECT_EQ(jobs.delivery_hist(0).count(), vg.expected_messages());
  EXPECT_EQ(jobs.delivery_hist(1).count(), sg.expected_messages());
  // Compact on ppn=4 gives each job whole nodes, so its inter-node
  // traffic is attributable and the storm must have reserved links.
  EXPECT_GT(m->network().job_link_reservations(1), 0u);
  jobs.collect_metrics();
  m->collect_metrics();
  std::ostringstream csv;
  m->metrics().write_csv(csv);
  const std::string s = csv.str();
  for (const char* name :
       {"job.0.pes", "job.0.msgs_executed", "job.0.delivery_us",
        "job.1.pes", "job.1.link_reservations"}) {
    EXPECT_NE(s.find(name), std::string::npos) << "metric " << name;
  }
}

// The tracer's `job` column is strictly opt-in: present (and correct)
// once place() installs the attribution map, absent — byte-compatible
// headers — without it.
TEST(TenancyTrace, JobColumnOnlyWithAttributionMap) {
  trace::EventTracer with_map(1u << 12);
  with_map.record(3, trace::Ev::kSmsgSend, 100, 0, 1, 64);
  with_map.set_job_of_pe({0, 0, 1, 1});
  std::ostringstream a;
  with_map.write_csv(a);
  EXPECT_NE(a.str().find("pe,t_ns,dur_ns,event,peer,size,job"),
            std::string::npos);
  EXPECT_NE(a.str().find("3,100,0,smsg_send,1,64,1"), std::string::npos);
  EXPECT_EQ(with_map.job_of(3), 1);
  EXPECT_EQ(with_map.job_of(7), -1);

  trace::EventTracer bare(1u << 12);
  bare.record(3, trace::Ev::kSmsgSend, 100, 0, 1, 64);
  std::ostringstream b;
  bare.write_csv(b);
  EXPECT_NE(b.str().find("pe,t_ns,dur_ns,event,peer,size\n"),
            std::string::npos);
  EXPECT_EQ(b.str().find("job"), std::string::npos);
}

}  // namespace
}  // namespace ugnirt
