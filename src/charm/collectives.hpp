// Higher-order collectives over the Charm layer: barriers, gathers and
// section multicasts.
//
// Converse implementations share these "common implementations such as
// collective operations" across machine layers (paper §III-B) — they are
// built purely on handlers and the spanning tree, so they run unchanged on
// the uGNI, MPI and SMP layers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "charm/charm.hpp"

namespace ugnirt::charm {

class Collectives {
 public:
  explicit Collectives(Charm& charm);
  Collectives(const Collectives&) = delete;
  Collectives& operator=(const Collectives&) = delete;

  // ---- barrier ----

  /// Register a barrier; every PE must call `arrive` once per round.  The
  /// callback runs on every PE when the round completes (release wave).
  int register_barrier(std::function<void()> on_release);
  void arrive(int barrier_id);

  // ---- gather ----

  /// Register a gather to PE 0: each PE contributes an opaque blob per
  /// round; the root callback receives them indexed by PE.
  int register_gather(
      std::function<void(const std::vector<std::vector<std::uint8_t>>&)>
          at_root);
  void contribute_blob(int gather_id, const void* bytes, std::uint32_t len);

  // ---- section multicast ----

  /// Create a section over an explicit PE list.  Delivery uses a spanning
  /// tree *within the section* (fanout 4), not point-to-point sends from
  /// the root.
  int create_section(std::vector<int> pes);

  /// Multicast a payload to every PE of the section; `handler` runs on
  /// each member.  Must be registered before machine().run().
  int register_section_handler(
      std::function<void(const void* payload, std::uint32_t len)> fn);
  void multicast(int section_id, int handler_id, const void* payload,
                 std::uint32_t len);

 private:
  struct Barrier {
    std::function<void()> on_release;
    int reduction_id = -1;
  };
  struct Gather {
    std::function<void(const std::vector<std::vector<std::uint8_t>>&)> cb;
    // Root-side assembly for the current round.
    std::vector<std::vector<std::uint8_t>> blobs;
    int received = 0;
  };

  void section_deliver(void* msg);

  Charm* charm_;
  int barrier_release_handler_ = -1;
  int gather_handler_ = -1;
  int section_handler_ = -1;
  std::vector<Barrier> barriers_;
  std::vector<Gather> gathers_;
  std::vector<std::vector<int>> sections_;
  std::vector<std::function<void(const void*, std::uint32_t)>>
      section_handlers_;
};

}  // namespace ugnirt::charm
