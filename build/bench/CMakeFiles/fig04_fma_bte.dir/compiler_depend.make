# Empty compiler generated dependencies file for fig04_fma_bte.
# This may be replaced when dependencies are built.
