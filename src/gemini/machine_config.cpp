#include "gemini/machine_config.hpp"

#include <string>

namespace ugnirt::gemini {

namespace {
constexpr const char* kPrefix = "gemini.";

std::string key(const char* name) { return std::string(kPrefix) + name; }
}  // namespace

MachineConfig MachineConfig::from(const Config& cfg) {
  MachineConfig m;
  auto i64 = [&](const char* name, SimTime cur) {
    return cfg.get_int_or(key(name), cur);
  };
  auto i32 = [&](const char* name, std::int64_t cur) {
    return static_cast<std::uint32_t>(cfg.get_int_or(key(name), cur));
  };
  auto f64 = [&](const char* name, double cur) {
    return cfg.get_double_or(key(name), cur);
  };

  m.cores_per_node = static_cast<int>(i64("cores_per_node", m.cores_per_node));
  m.hop_ns = i64("hop_ns", m.hop_ns);
  m.link_bw = f64("link_bw", m.link_bw);

  m.smsg_cpu_send_ns = i64("smsg_cpu_send_ns", m.smsg_cpu_send_ns);
  m.smsg_wire_startup_ns = i64("smsg_wire_startup_ns", m.smsg_wire_startup_ns);
  m.smsg_per_byte_ns = f64("smsg_per_byte_ns", m.smsg_per_byte_ns);
  m.smsg_cpu_recv_ns = i64("smsg_cpu_recv_ns", m.smsg_cpu_recv_ns);
  m.smsg_max_bytes = i32("smsg_max_bytes", m.smsg_max_bytes);
  m.smsg_mailbox_credits = i32("smsg_mailbox_credits", m.smsg_mailbox_credits);

  m.cq_entries = i32("cq_entries", m.cq_entries);

  m.fma_put_startup_ns = i64("fma_put_startup_ns", m.fma_put_startup_ns);
  m.fma_get_startup_ns = i64("fma_get_startup_ns", m.fma_get_startup_ns);
  m.fma_bw = f64("fma_bw", m.fma_bw);
  m.fma_desc_ns = i64("fma_desc_ns", m.fma_desc_ns);

  m.bte_put_startup_ns = i64("bte_put_startup_ns", m.bte_put_startup_ns);
  m.bte_get_startup_ns = i64("bte_get_startup_ns", m.bte_get_startup_ns);
  m.bte_bw = f64("bte_bw", m.bte_bw);
  m.bte_desc_ns = i64("bte_desc_ns", m.bte_desc_ns);

  m.malloc_base_ns = i64("malloc_base_ns", m.malloc_base_ns);
  m.malloc_per_page_ns = i64("malloc_per_page_ns", m.malloc_per_page_ns);
  m.free_base_ns = i64("free_base_ns", m.free_base_ns);
  m.mem_reg_base_ns = i64("mem_reg_base_ns", m.mem_reg_base_ns);
  m.mem_reg_per_page_ns = i64("mem_reg_per_page_ns", m.mem_reg_per_page_ns);
  m.mem_dereg_base_ns = i64("mem_dereg_base_ns", m.mem_dereg_base_ns);
  m.mem_dereg_per_page_ns =
      i64("mem_dereg_per_page_ns", m.mem_dereg_per_page_ns);
  m.page_bytes = i32("page_bytes", m.page_bytes);

  m.memcpy_base_ns = i64("memcpy_base_ns", m.memcpy_base_ns);
  m.memcpy_bw = f64("memcpy_bw", m.memcpy_bw);

  m.cq_poll_ns = i64("cq_poll_ns", m.cq_poll_ns);
  m.cq_event_ns = i64("cq_event_ns", m.cq_event_ns);

  m.mempool_alloc_ns = i64("mempool_alloc_ns", m.mempool_alloc_ns);
  m.mempool_free_ns = i64("mempool_free_ns", m.mempool_free_ns);
  m.mempool_init_bytes = static_cast<std::uint64_t>(
      i64("mempool_init_bytes", static_cast<SimTime>(m.mempool_init_bytes)));

  m.charm_send_overhead_ns =
      i64("charm_send_overhead_ns", m.charm_send_overhead_ns);
  m.charm_recv_overhead_ns =
      i64("charm_recv_overhead_ns", m.charm_recv_overhead_ns);
  m.sched_loop_ns = i64("sched_loop_ns", m.sched_loop_ns);
  m.agg_item_overhead_ns =
      i64("agg_item_overhead_ns", m.agg_item_overhead_ns);
  m.rdma_threshold = i32("rdma_threshold", m.rdma_threshold);

  m.mpi_call_overhead_ns = i64("mpi_call_overhead_ns", m.mpi_call_overhead_ns);
  m.mpi_match_ns = i64("mpi_match_ns", m.mpi_match_ns);
  m.mpi_iprobe_ns = i64("mpi_iprobe_ns", m.mpi_iprobe_ns);
  m.mpi_iprobe_scan_ns = i64("mpi_iprobe_scan_ns", m.mpi_iprobe_scan_ns);
  m.mpi_iprobe_conn_ns = i64("mpi_iprobe_conn_ns", m.mpi_iprobe_conn_ns);
  m.mpi_iprobe_conn_free = i32("mpi_iprobe_conn_free", m.mpi_iprobe_conn_free);
  m.mpi_eager_threshold = i32("mpi_eager_threshold", m.mpi_eager_threshold);
  m.mpi_rdma_threshold = i32("mpi_rdma_threshold", m.mpi_rdma_threshold);
  m.udreg_capacity = i32("udreg_capacity", m.udreg_capacity);
  m.udreg_hit_ns = i64("udreg_hit_ns", m.udreg_hit_ns);
  m.mpi_xpmem_threshold = i32("mpi_xpmem_threshold", m.mpi_xpmem_threshold);
  m.mpi_xpmem_overhead_ns =
      i64("mpi_xpmem_overhead_ns", m.mpi_xpmem_overhead_ns);
  m.mpi_shm_notify_ns = i64("mpi_shm_notify_ns", m.mpi_shm_notify_ns);
  m.mpi_mailbox_credits = i32("mpi_mailbox_credits", m.mpi_mailbox_credits);

  m.pxshm_notify_ns = i64("pxshm_notify_ns", m.pxshm_notify_ns);
  m.pxshm_poll_ns = i64("pxshm_poll_ns", m.pxshm_poll_ns);
  return m;
}

void MachineConfig::export_to(Config& cfg) const {
  auto set_i = [&](const char* name, std::int64_t v) {
    cfg.set(key(name), std::to_string(v));
  };
  auto set_f = [&](const char* name, double v) {
    cfg.set(key(name), std::to_string(v));
  };
  set_i("cores_per_node", cores_per_node);
  set_i("hop_ns", hop_ns);
  set_f("link_bw", link_bw);
  set_i("smsg_cpu_send_ns", smsg_cpu_send_ns);
  set_i("smsg_wire_startup_ns", smsg_wire_startup_ns);
  set_f("smsg_per_byte_ns", smsg_per_byte_ns);
  set_i("smsg_cpu_recv_ns", smsg_cpu_recv_ns);
  set_i("smsg_max_bytes", smsg_max_bytes);
  set_i("smsg_mailbox_credits", smsg_mailbox_credits);
  set_i("cq_entries", cq_entries);
  set_i("fma_put_startup_ns", fma_put_startup_ns);
  set_i("fma_get_startup_ns", fma_get_startup_ns);
  set_f("fma_bw", fma_bw);
  set_i("fma_desc_ns", fma_desc_ns);
  set_i("bte_put_startup_ns", bte_put_startup_ns);
  set_i("bte_get_startup_ns", bte_get_startup_ns);
  set_f("bte_bw", bte_bw);
  set_i("bte_desc_ns", bte_desc_ns);
  set_i("malloc_base_ns", malloc_base_ns);
  set_i("malloc_per_page_ns", malloc_per_page_ns);
  set_i("free_base_ns", free_base_ns);
  set_i("mem_reg_base_ns", mem_reg_base_ns);
  set_i("mem_reg_per_page_ns", mem_reg_per_page_ns);
  set_i("mem_dereg_base_ns", mem_dereg_base_ns);
  set_i("mem_dereg_per_page_ns", mem_dereg_per_page_ns);
  set_i("page_bytes", page_bytes);
  set_i("memcpy_base_ns", memcpy_base_ns);
  set_f("memcpy_bw", memcpy_bw);
  set_i("cq_poll_ns", cq_poll_ns);
  set_i("cq_event_ns", cq_event_ns);
  set_i("mempool_alloc_ns", mempool_alloc_ns);
  set_i("mempool_free_ns", mempool_free_ns);
  set_i("mempool_init_bytes", static_cast<std::int64_t>(mempool_init_bytes));
  set_i("charm_send_overhead_ns", charm_send_overhead_ns);
  set_i("charm_recv_overhead_ns", charm_recv_overhead_ns);
  set_i("sched_loop_ns", sched_loop_ns);
  set_i("agg_item_overhead_ns", agg_item_overhead_ns);
  set_i("rdma_threshold", rdma_threshold);
  set_i("mpi_call_overhead_ns", mpi_call_overhead_ns);
  set_i("mpi_match_ns", mpi_match_ns);
  set_i("mpi_iprobe_ns", mpi_iprobe_ns);
  set_i("mpi_iprobe_scan_ns", mpi_iprobe_scan_ns);
  set_i("mpi_iprobe_conn_ns", mpi_iprobe_conn_ns);
  set_i("mpi_iprobe_conn_free", mpi_iprobe_conn_free);
  set_i("mpi_eager_threshold", mpi_eager_threshold);
  set_i("mpi_rdma_threshold", mpi_rdma_threshold);
  set_i("udreg_capacity", udreg_capacity);
  set_i("udreg_hit_ns", udreg_hit_ns);
  set_i("mpi_xpmem_threshold", mpi_xpmem_threshold);
  set_i("mpi_xpmem_overhead_ns", mpi_xpmem_overhead_ns);
  set_i("mpi_shm_notify_ns", mpi_shm_notify_ns);
  set_i("mpi_mailbox_credits", mpi_mailbox_credits);
  set_i("pxshm_notify_ns", pxshm_notify_ns);
  set_i("pxshm_poll_ns", pxshm_poll_ns);
}

}  // namespace ugnirt::gemini
