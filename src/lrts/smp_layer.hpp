// SMP-mode uGNI machine layer — the paper's §VII future work, built out.
//
// "Although optimized, the intra-node communication via POSIX shared
// memory is still quite slow due to memory copy.  We plan to investigate
// the SMP mode of CHARM++ on uGNI to further optimize the intra-node
// communication."
//
// In SMP mode one *process* spans a node: worker PEs share the node's
// address space and a single NIC driven by a dedicated communication
// thread (modeled as an independent actor with its own virtual-time
// cursor).  Consequences, all realized here:
//
//   * intra-node messages pass by pointer between workers — zero copies,
//     no pxshm, no NIC loopback;
//   * SMSG mailboxes exist per node *pair*, not per PE pair — mailbox
//     memory shrinks by (cores/node)^2;
//   * network work (protocol handling, CQ polling, rendezvous GETs) runs
//     on the comm thread, overlapping with worker compute — workers pay
//     only a lock-and-enqueue cost to send;
//   * the comm thread is a serialization point: at high message rates it
//     saturates before independent per-PE NICs would (the known SMP-mode
//     trade-off; see ablation_smp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "converse/machine.hpp"
#include "fault/retry.hpp"
#include "lrts/layer_stats.hpp"
#include "lrts/retry_util.hpp"
#include "mempool/mempool.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt::lrts {

class SmpLayer final : public converse::MachineLayer {
 public:
  SmpLayer();
  ~SmpLayer() override;

  const char* name() const override { return "uGNI-SMP"; }

  void init_pe(converse::Pe& pe) override;
  void* alloc(sim::Context& ctx, converse::Pe& pe, std::size_t bytes) override;
  void free_msg(sim::Context& ctx, converse::Pe& pe, void* msg) override;
  void submit(sim::Context& ctx, converse::Pe& src, int dest_pe,
              converse::MsgView msg,
              const converse::SendOptions& opts) override;
  std::uint32_t recommended_batch_bytes(converse::Pe& src,
                                        int dest_pe) const override;
  void advance(sim::Context& ctx, converse::Pe& pe) override;
  bool has_backlog(const converse::Pe& pe) const override;

  /// Snapshot of this layer's registry-backed counters (zeros before the
  /// first init_pe binds them).
  LayerStats stats() const;

  void collect_metrics(trace::MetricsRegistry& reg) override;

  /// Mailbox memory across the job: grows with node pairs, not PE pairs.
  std::uint64_t total_mailbox_bytes() const;

 private:
  struct NodeState;

  NodeState& node_state(int node) {
    return *nodes_[static_cast<std::size_t>(node)];
  }
  void ensure_domain(converse::Machine& m);
  /// Endpoint to `dest_node` via ugni::Nic::get_or_connect — the uGNI API
  /// owns channel creation and its first-touch cost (charged to the comm
  /// thread that first touches the peer).
  ugni::gni_ep_handle_t connect(NodeState& src, int dest_node);
  void comm_wake(NodeState& n, SimTime t);
  void comm_step(NodeState& n, SimTime t);
  void comm_handle_smsg(sim::Context& ctx, NodeState& n, int src_inst);
  void comm_handle_completion(sim::Context& ctx, NodeState& n,
                              const ugni::gni_cq_entry_t& ev);
  void comm_send(sim::Context& ctx, NodeState& n, int dest_pe,
                 std::uint8_t tag, const void* bytes, std::uint32_t len,
                 void* owned_msg);
  void comm_flush(sim::Context& ctx, NodeState& n);
  /// Start the node-level rendezvous protocol for `msg` (register or
  /// pool-resolve, then send/queue the INIT control message).
  void begin_node_rendezvous(sim::Context& ctx, NodeState& n, int dest_pe,
                             std::uint32_t size, void* msg);
  void deliver_to_worker(NodeState& n, int pe, void* msg, SimTime t);

  converse::Machine* machine_ = nullptr;
  std::unique_ptr<ugni::Domain> domain_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::uint32_t smsg_cap_ = 1024;
  fault::RetryPolicy retry_{};

  // Hot-path counters bound to the machine registry in ensure_domain.
  trace::Counter* c_intra_node_ptr_msgs_ = nullptr;
  trace::Counter* c_comm_thread_sends_ = nullptr;
  trace::Counter* c_rendezvous_gets_ = nullptr;
  trace::Counter* c_comm_thread_busy_defers_ = nullptr;
  trace::Counter* c_retry_smsg_ = nullptr;
  trace::Counter* c_retry_post_ = nullptr;
  trace::Counter* c_retry_mem_register_ = nullptr;
  trace::Counter* c_retry_escalations_ = nullptr;
  trace::Counter* c_fallback_rendezvous_ = nullptr;
  trace::Counter* c_fallback_heap_ = nullptr;
  trace::Counter* c_cq_recovered_ = nullptr;
};

}  // namespace ugnirt::lrts
