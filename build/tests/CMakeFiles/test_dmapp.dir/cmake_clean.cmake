file(REMOVE_RECURSE
  "CMakeFiles/test_dmapp.dir/dmapp_test.cpp.o"
  "CMakeFiles/test_dmapp.dir/dmapp_test.cpp.o.d"
  "test_dmapp"
  "test_dmapp.pdb"
  "test_dmapp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
