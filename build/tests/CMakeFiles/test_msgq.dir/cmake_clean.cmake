file(REMOVE_RECURSE
  "CMakeFiles/test_msgq.dir/msgq_test.cpp.o"
  "CMakeFiles/test_msgq.dir/msgq_test.cpp.o.d"
  "test_msgq"
  "test_msgq.pdb"
  "test_msgq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msgq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
