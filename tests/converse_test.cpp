#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "lrts/runtime.hpp"
#include "lrts/ugni_layer.hpp"

namespace ugnirt::converse {
namespace {

using lrts::make_machine;

MachineOptions opts(int pes) {
  MachineOptions o;
  o.pes = pes;
  return o;
}

/// Fill a message payload with a deterministic pattern and verify it.
void fill_pattern(void* msg, std::uint32_t total, std::uint32_t seed) {
  auto* bytes = static_cast<std::uint8_t*>(payload_of(msg));
  std::uint32_t n = total - kCmiHeaderBytes;
  for (std::uint32_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>((i * 131 + seed) & 0xff);
  }
}

bool check_pattern(const void* msg, std::uint32_t total, std::uint32_t seed) {
  auto* bytes = static_cast<const std::uint8_t*>(payload_of(msg));
  std::uint32_t n = total - kCmiHeaderBytes;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (bytes[i] != static_cast<std::uint8_t>((i * 131 + seed) & 0xff)) {
      return false;
    }
  }
  return true;
}

class ConverseBothLayers : public ::testing::TestWithParam<LayerKind> {};

TEST_P(ConverseBothLayers, PingPongDeliversIntactPayloads) {
  // Sweep sizes across every protocol regime: SMSG, FMA GET, BTE GET
  // (uGNI layer) / E0, E1, rendezvous (MPI layer).
  for (std::uint32_t payload : {8u, 512u, 2048u, 16384u, 262144u}) {
    auto o = opts(2);
    o.pes_per_node = 1;  // two nodes, inter-node traffic
    auto m = make_machine(GetParam(), o);
    const std::uint32_t total = payload + kCmiHeaderBytes;
    int bounces = 0;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      EXPECT_TRUE(check_pattern(msg, total, 9)) << "payload " << payload;
      ++bounces;
      int me = CmiMyPe();
      if (bounces < 6) {
        void* reply = CmiAlloc(total);
        fill_pattern(reply, total, 9);
        CmiSetHandler(reply, h);
        CmiSyncSendAndFree(1 - me, total, reply);
      }
      CmiFree(msg);
    });
    m->start(0, [&] {
      void* msg = CmiAlloc(total);
      fill_pattern(msg, total, 9);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, total, msg);
    });
    m->run();
    EXPECT_EQ(bounces, 6) << "payload " << payload;
  }
}

TEST_P(ConverseBothLayers, ManyToOneDeliversEverything) {
  auto o = opts(9);
  o.pes_per_node = 3;
  auto m = make_machine(GetParam(), o);
  int received = 0;
  std::vector<bool> seen(9, false);
  int h = m->register_handler([&](void* msg) {
    ++received;
    seen[static_cast<std::size_t>(header_of(msg)->src_pe)] = true;
    CmiFree(msg);
  });
  for (int pe = 1; pe < 9; ++pe) {
    m->start(pe, [&, h] {
      void* msg = CmiAlloc(kCmiHeaderBytes + 100);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(0, kCmiHeaderBytes + 100, msg);
    });
  }
  m->run();
  EXPECT_EQ(received, 8);
  for (int pe = 1; pe < 9; ++pe) EXPECT_TRUE(seen[static_cast<size_t>(pe)]);
}

TEST_P(ConverseBothLayers, BroadcastReachesAllPes) {
  auto m = make_machine(GetParam(), opts(23));
  std::vector<int> hits(23, 0);
  int h = m->register_handler([&](void* msg) {
    hits[static_cast<std::size_t>(CmiMyPe())]++;
    CmiFree(msg);
  });
  m->start(5, [&, h] {
    void* msg = CmiAlloc(kCmiHeaderBytes + 64);
    CmiSetHandler(msg, h);
    CmiSyncBroadcastAllAndFree(kCmiHeaderBytes + 64, msg);
  });
  m->run();
  for (int pe = 0; pe < 23; ++pe) {
    EXPECT_EQ(hits[static_cast<std::size_t>(pe)], 1) << "pe " << pe;
  }
}

TEST_P(ConverseBothLayers, SelfSendWorks) {
  auto m = make_machine(GetParam(), opts(1));
  int count = 0;
  int h = m->register_handler([&](void* msg) {
    ++count;
    EXPECT_EQ(CmiMyPe(), 0);
    CmiFree(msg);
  });
  m->start(0, [&, h] {
    for (int i = 0; i < 5; ++i) {
      void* msg = CmiAlloc(kCmiHeaderBytes + 8);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(0, kCmiHeaderBytes + 8, msg);
    }
  });
  m->run();
  EXPECT_EQ(count, 5);
}

TEST_P(ConverseBothLayers, VirtualTimeAdvancesAndIsDeterministic) {
  auto run_once = [&] {
    auto m = make_machine(GetParam(), opts(4));
    SimTime end = 0;
    int h = -1;
    int hops = 0;
    h = m->register_handler([&](void* msg) {
      CmiFree(msg);
      if (++hops < 20) {
        void* next = CmiAlloc(kCmiHeaderBytes + 256);
        CmiSetHandler(next, h);
        CmiSyncSendAndFree((CmiMyPe() + 1) % 4, kCmiHeaderBytes + 256, next);
      }
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(kCmiHeaderBytes + 256);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, kCmiHeaderBytes + 256, msg);
    });
    end = m->run();
    EXPECT_GT(end, 0);
    return end;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Layers, ConverseBothLayers,
                         ::testing::Values(LayerKind::kUgni, LayerKind::kMpi),
                         [](const auto& info) {
                           return info.param == LayerKind::kUgni ? "uGNI"
                                                                 : "MPI";
                         });

// ---------------------------------------------------------------- uGNI ----

TEST(ConverseUgni, UgniBeatsMpiOnSmallMessageLatency) {
  // The headline claim (Fig 9a): uGNI-based CHARM++ one-way latency is
  // substantially lower than MPI-based for small messages.  The first
  // exchange warms up channel setup (mailbox registration), as real
  // ping-pong benchmarks do; we measure the steady-state legs.
  auto one_way = [](LayerKind layer) {
    auto o = opts(2);
    o.pes_per_node = 1;
    auto m = make_machine(layer, o);
    constexpr int kIters = 10;
    int legs = 0;
    SimTime measure_start = 0, measure_end = 0;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      ++legs;
      if (legs == 2) {  // warmup round trip done
        measure_start = Machine::running()->current_pe().ctx().now();
      }
      if (legs == 2 + 2 * kIters) {
        measure_end = Machine::running()->current_pe().ctx().now();
        CmiFree(msg);
        return;
      }
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1 - CmiMyPe(), kCmiHeaderBytes + 8, msg);
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(kCmiHeaderBytes + 8);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, kCmiHeaderBytes + 8, msg);
    });
    m->run();
    return (measure_end - measure_start) / (2 * kIters);
  };
  SimTime ugni = one_way(LayerKind::kUgni);
  SimTime mpi = one_way(LayerKind::kMpi);
  // Paper: ~1.6us vs ~3us.
  EXPECT_LT(ugni, microseconds(2.5));
  EXPECT_GT(ugni, microseconds(1.0));
  EXPECT_GT(mpi, ugni * 3 / 2);
}

TEST(ConverseUgni, MempoolImprovesLargeMessageLatency) {
  auto round_trip = [](bool pool) {
    auto o = opts(2);
    o.pes_per_node = 1;
    o.use_mempool = pool;
    auto m = make_machine(LayerKind::kUgni, o);
    const std::uint32_t total = kCmiHeaderBytes + 65536;
    int bounces = 0;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      ++bounces;
      // Enough bounces that the pool's one-time slab expansions amortize
      // and the steady-state protocol difference dominates.
      if (bounces < 50) {
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(1 - CmiMyPe(), total, msg);  // reuse buffer
      } else {
        CmiFree(msg);
      }
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, total, msg);
    });
    return m->run();
  };
  SimTime with_pool = round_trip(true);
  SimTime without = round_trip(false);
  EXPECT_LT(with_pool, without);
  // Paper Fig 8b: latency reduced by ~50%, i.e. at least 25% end to end.
  EXPECT_LT(static_cast<double>(with_pool),
            0.8 * static_cast<double>(without));
}

TEST(ConverseUgni, PersistentMessagesBeatPlainRendezvous) {
  auto run = [](bool persistent) {
    auto o = opts(2);
    o.pes_per_node = 1;
    auto m = make_machine(LayerKind::kUgni, o);
    const std::uint32_t total = kCmiHeaderBytes + 32768;
    int received = 0;
    PersistentHandle handle;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      EXPECT_TRUE(check_pattern(msg, total, 3));
      ++received;
      CmiFree(msg);
    });
    m->start(0, [&, h, persistent]() mutable {
      if (persistent) {
        handle = Machine::running()->create_persistent(1, total);
        ASSERT_TRUE(handle.valid());
      }
      for (int i = 0; i < 4; ++i) {
        void* msg = CmiAlloc(total);
        fill_pattern(msg, total, 3);
        CmiSetHandler(msg, h);
        if (persistent) {
          Machine::running()->send_persistent(handle, msg);
        } else {
          CmiSyncSendAndFree(1, total, msg);
        }
      }
    });
    m->run();
    EXPECT_EQ(received, 4);
    return m->stats().msgs_executed;
  };
  run(false);
  run(true);
}

TEST(ConverseUgni, PersistentLatencyLowerThanRendezvous) {
  auto one_way = [](bool persistent) {
    auto o = opts(2);
    o.pes_per_node = 1;
    auto m = make_machine(LayerKind::kUgni, o);
    const std::uint32_t total = kCmiHeaderBytes + 65536;
    SimTime sent = 0, arrived = 0;
    int h = m->register_handler([&](void* msg) {
      arrived = Machine::running()->current_pe().ctx().now();
      CmiFree(msg);
    });
    m->start(0, [&, h, persistent] {
      PersistentHandle handle;
      if (persistent) {
        handle = Machine::running()->create_persistent(1, total);
      }
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, h);
      sent = Machine::running()->current_pe().ctx().now();
      if (persistent) {
        Machine::running()->send_persistent(handle, msg);
      } else {
        CmiSyncSendAndFree(1, total, msg);
      }
    });
    m->run();
    return arrived - sent;
  };
  SimTime persist = one_way(true);
  SimTime plain = one_way(false);
  EXPECT_LT(persist, plain);
}

TEST(ConverseUgni, PxshmSingleCopyFasterThanDoubleCopyIntraNode) {
  auto one_way = [](bool single) {
    auto o = opts(2);
    o.pes_per_node = 2;  // same node
    o.use_pxshm = true;
    o.pxshm_single_copy = single;
    auto m = make_machine(LayerKind::kUgni, o);
    const std::uint32_t total = kCmiHeaderBytes + 131072;
    SimTime sent = 0, arrived = 0;
    int h = m->register_handler([&](void* msg) {
      EXPECT_TRUE(check_pattern(msg, total, 5));
      arrived = Machine::running()->current_pe().ctx().now();
      CmiFree(msg);
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(total);
      fill_pattern(msg, total, 5);
      CmiSetHandler(msg, h);
      sent = Machine::running()->current_pe().ctx().now();
      CmiSyncSendAndFree(1, total, msg);
    });
    m->run();
    EXPECT_GT(arrived, sent);
    return arrived - sent;
  };
  EXPECT_LT(one_way(true), one_way(false));
}

TEST(ConverseUgni, CreditBackpressureDeliversEverythingInOrder) {
  // Flood one destination with more small messages than mailbox credits;
  // the backlog path must kick in and preserve per-pair FIFO order.
  auto o = opts(2);
  o.pes_per_node = 1;
  auto m = make_machine(LayerKind::kUgni, o);
  constexpr int kCount = 200;  // >> 8 credits
  std::vector<int> order;
  int h = m->register_handler([&](void* msg) {
    order.push_back(*msg_payload<int>(msg));
    CmiFree(msg);
  });
  m->start(0, [&, h] {
    for (int i = 0; i < kCount; ++i) {
      void* msg = CmiAlloc(kCmiHeaderBytes + sizeof(int));
      *msg_payload<int>(msg) = i;
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, kCmiHeaderBytes + sizeof(int), msg);
    }
  });
  m->run();
  auto* layer = dynamic_cast<lrts::UgniLayer*>(&m->layer());
  ASSERT_NE(layer, nullptr);
  EXPECT_GT(layer->stats().credit_stalls, 0u);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ConverseUgni, QdCountersBalanceAfterRun) {
  auto m = make_machine(LayerKind::kUgni, opts(8));
  int h = -1;
  h = m->register_handler([&](void* msg) {
    int ttl = *msg_payload<int>(msg);
    CmiFree(msg);
    if (ttl > 0) {
      void* next = CmiAlloc(kCmiHeaderBytes + sizeof(int));
      *msg_payload<int>(next) = ttl - 1;
      CmiSetHandler(next, h);
      CmiSyncSendAndFree((CmiMyPe() * 3 + 1) % 8, kCmiHeaderBytes + 4, next);
    }
  });
  m->start(0, [&, h] {
    for (int i = 0; i < 10; ++i) {
      void* msg = CmiAlloc(kCmiHeaderBytes + sizeof(int));
      *msg_payload<int>(msg) = 15;
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(i % 8, kCmiHeaderBytes + 4, msg);
    }
  });
  m->run();
  std::uint64_t created = 0, processed = 0;
  for (int pe = 0; pe < 8; ++pe) {
    created += m->qd_created(pe);
    processed += m->qd_processed(pe);
  }
  EXPECT_EQ(created, processed);
  EXPECT_EQ(created, 10u * 16u);
}

TEST(ConverseUgni, SmsgCapShrinksWithJobSizeInLayer) {
  auto small = make_machine(LayerKind::kUgni, opts(16));
  auto* l1 = dynamic_cast<lrts::UgniLayer*>(&small->layer());
  EXPECT_EQ(l1->smsg_cap(), 1024u);
  auto big = make_machine(LayerKind::kUgni, opts(2048));
  auto* l2 = dynamic_cast<lrts::UgniLayer*>(&big->layer());
  EXPECT_EQ(l2->smsg_cap(), 512u);
}

TEST(ConverseUgni, IntranodeWithoutPxshmStillDelivers) {
  auto o = opts(4);
  o.pes_per_node = 4;
  o.use_pxshm = false;  // force NIC loopback ("original" Fig 8c curve)
  auto m = make_machine(LayerKind::kUgni, o);
  int got = 0;
  int h = m->register_handler([&](void* msg) {
    EXPECT_TRUE(check_pattern(msg, header_of(msg)->size, 1));
    ++got;
    CmiFree(msg);
  });
  m->start(0, [&, h] {
    for (std::uint32_t payload : {64u, 4096u, 65536u}) {
      std::uint32_t total = payload + kCmiHeaderBytes;
      void* msg = CmiAlloc(total);
      fill_pattern(msg, total, 1);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(2, total, msg);
    }
  });
  m->run();
  EXPECT_EQ(got, 3);
}

}  // namespace
}  // namespace ugnirt::converse
