
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_protocol_knobs.cpp" "bench/CMakeFiles/ablation_protocol_knobs.dir/ablation_protocol_knobs.cpp.o" "gcc" "bench/CMakeFiles/ablation_protocol_knobs.dir/ablation_protocol_knobs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ugnirt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/charm/CMakeFiles/ugnirt_charm.dir/DependInfo.cmake"
  "/root/repo/build/src/converse/CMakeFiles/ugnirt_lrts.dir/DependInfo.cmake"
  "/root/repo/build/src/mpilite/CMakeFiles/ugnirt_mpilite.dir/DependInfo.cmake"
  "/root/repo/build/src/converse/CMakeFiles/ugnirt_converse.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ugnirt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mempool/CMakeFiles/ugnirt_mempool.dir/DependInfo.cmake"
  "/root/repo/build/src/ugni/CMakeFiles/ugnirt_ugni.dir/DependInfo.cmake"
  "/root/repo/build/src/gemini/CMakeFiles/ugnirt_gemini.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ugnirt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ugnirt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ugnirt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
