// SMP-mode machine layer tests (paper §VII future work, implemented).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/namdmodel/namdmodel.hpp"
#include "lrts/runtime.hpp"
#include "lrts/smp_layer.hpp"
#include "lrts/ugni_layer.hpp"

namespace ugnirt {
namespace {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::LayerKind;
using converse::MachineOptions;

MachineOptions smp_opts(int pes, int ppn) {
  MachineOptions o;
  o.pes = pes;
  o.smp_mode = true;
  o.pes_per_node = ppn;
  return o;
}

TEST(SmpLayer, DeliversIntraAndInterNodeIntact) {
  auto m = lrts::make_machine(LayerKind::kUgni, smp_opts(8, 4));  // 2 nodes x 4 workers
  int got = 0;
  int h = m->register_handler([&](void* msg) {
    auto* bytes = static_cast<std::uint8_t*>(converse::payload_of(msg));
    std::uint32_t n = converse::header_of(msg)->size - kCmiHeaderBytes;
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(bytes[i], static_cast<std::uint8_t>(i * 3 + 1));
    }
    ++got;
    CmiFree(msg);
  });
  m->start(0, [&, h] {
    for (int dest = 1; dest < 8; ++dest) {
      for (std::uint32_t payload : {32u, 900u, 4096u, 131072u}) {
        void* msg = CmiAlloc(payload + kCmiHeaderBytes);
        auto* bytes = static_cast<std::uint8_t*>(converse::payload_of(msg));
        for (std::uint32_t i = 0; i < payload; ++i) {
          bytes[i] = static_cast<std::uint8_t>(i * 3 + 1);
        }
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(dest, payload + kCmiHeaderBytes, msg);
      }
    }
  });
  m->run();
  EXPECT_EQ(got, 28);
  auto* layer = dynamic_cast<lrts::SmpLayer*>(&m->layer());
  ASSERT_NE(layer, nullptr);
  EXPECT_GT(layer->stats().intra_node_ptr_msgs, 0u);
  EXPECT_GT(layer->stats().comm_thread_sends, 0u);
}

TEST(SmpLayer, IntraNodeLatencyBeatsPxshm) {
  // The point of the §VII plan: pointer handoff beats even single-copy
  // pxshm for large intra-node messages.
  auto one_way = [](bool smp) {
    MachineOptions o;
    o.pes = 2;
    o.pes_per_node = 2;  // same node
    o.smp_mode = smp;
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    const std::uint32_t total = kCmiHeaderBytes + 262144;
    int legs = 0;
    SimTime t0 = 0, t1 = 0;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      ++legs;
      if (legs == 2) t0 = converse::Machine::running()->current_pe().ctx().now();
      if (legs == 10) {
        t1 = converse::Machine::running()->current_pe().ctx().now();
        CmiFree(msg);
        return;
      }
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1 - CmiMyPe(), total, msg);
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, total, msg);
    });
    m->run();
    return (t1 - t0) / 8;
  };
  SimTime smp = one_way(true);
  SimTime pxshm = one_way(false);
  // Zero copies vs one copy of 256 KiB (~65 us at 4 GB/s).
  EXPECT_LT(smp, pxshm / 4);
}

TEST(SmpLayer, MailboxMemoryPerNodePairNotPePair) {
  auto mailbox_bytes = [](bool smp) {
    MachineOptions o;
    o.pes = 24;
    o.pes_per_node = 6;  // 4 nodes
    o.smp_mode = smp;
    o.use_pxshm = false;
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    int h = m->register_handler([&](void* msg) { CmiFree(msg); });
    // All-to-all small messages establish every channel that will exist.
    for (int pe = 0; pe < 24; ++pe) {
      m->start(pe, [&, pe, h] {
        for (int dest = 0; dest < 24; ++dest) {
          if (dest == pe) continue;
          void* msg = CmiAlloc(kCmiHeaderBytes + 16);
          CmiSetHandler(msg, h);
          CmiSyncSendAndFree(dest, kCmiHeaderBytes + 16, msg);
        }
      });
    }
    m->run();
    if (smp) {
      return dynamic_cast<lrts::SmpLayer*>(&m->layer())
          ->total_mailbox_bytes();
    }
    return dynamic_cast<lrts::UgniLayer*>(&m->layer())
        ->total_mailbox_bytes();
  };
  std::uint64_t non_smp = mailbox_bytes(false);
  std::uint64_t smp = mailbox_bytes(true);
  EXPECT_GT(non_smp, 0u);
  EXPECT_GT(smp, 0u);
  // 4 nodes: 12 directed node pairs vs 24*18 directed inter-node PE pairs.
  EXPECT_LT(smp * 10, non_smp);
}

TEST(SmpLayer, WorkerSendCostIsTinyCommThreadDoesTheWork) {
  auto m = lrts::make_machine(LayerKind::kUgni, smp_opts(4, 2));
  SimTime send_cost = 0;
  int h = m->register_handler([&](void* msg) { CmiFree(msg); });
  m->start(0, [&, h] {
    void* msg = CmiAlloc(kCmiHeaderBytes + 32768);
    CmiSetHandler(msg, h);
    sim::Context& ctx = converse::Machine::running()->current_pe().ctx();
    SimTime before = ctx.now();
    CmiSyncSendAndFree(2, kCmiHeaderBytes + 32768, msg);  // other node
    send_cost = ctx.now() - before;
  });
  m->run();
  // The worker only pays envelope + lock-and-enqueue, never the wire
  // protocol: well under a microsecond.
  EXPECT_LT(send_cost, 1000);
  EXPECT_GT(send_cost, 0);
}

TEST(SmpLayer, ManyToOneAcrossNodesUnderLoad) {
  auto m = lrts::make_machine(LayerKind::kUgni, smp_opts(12, 3));  // 4 nodes
  int got = 0;
  std::uint64_t byte_sum = 0, sent = 0;
  int h = m->register_handler([&](void* msg) {
    ++got;
    byte_sum += converse::header_of(msg)->size;
    CmiFree(msg);
  });
  for (int pe = 1; pe < 12; ++pe) {
    m->start(pe, [&, pe, h] {
      for (int i = 0; i < 20; ++i) {
        std::uint32_t payload = 64u << (i % 6);
        void* msg = CmiAlloc(payload + kCmiHeaderBytes);
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(0, payload + kCmiHeaderBytes, msg);
      }
    });
  }
  for (int pe = 1; pe < 12; ++pe) {
    for (int i = 0; i < 20; ++i) sent += (64u << (i % 6)) + kCmiHeaderBytes;
  }
  m->run();
  EXPECT_EQ(got, 220);
  EXPECT_EQ(byte_sum, sent);
}

TEST(SmpLayer, NamdModelBenefitsFromSmpMode) {
  // The paper's §VII expectation, end to end: running the NAMD-shaped
  // workload in SMP mode (zero-copy intra-node, comm-thread offload)
  // improves step time over the per-PE layer at multi-node scale.
  apps::namdmodel::NamdConfig cfg;
  cfg.system = apps::namdmodel::iapp();
  cfg.warmup_steps = 1;
  cfg.steps = 2;
  MachineOptions smp;
  smp.pes = 96;
  smp.smp_mode = true;
  MachineOptions plain;
  plain.pes = 96;
  double t_smp = apps::namdmodel::run_namd_model(smp, cfg).ms_per_step;
  double t_plain = apps::namdmodel::run_namd_model(plain, cfg).ms_per_step;
  EXPECT_LT(t_smp, t_plain);
}

TEST(SmpLayer, DeterministicRuns) {
  auto run = [] {
    auto m = lrts::make_machine(LayerKind::kUgni, smp_opts(6, 3));
    int h = -1;
    int hops = 0;
    h = m->register_handler([&](void* msg) {
      CmiFree(msg);
      if (++hops < 30) {
        void* next = CmiAlloc(kCmiHeaderBytes + 2048);
        CmiSetHandler(next, h);
        CmiSyncSendAndFree((CmiMyPe() + 1) % 6, kCmiHeaderBytes + 2048,
                           next);
      }
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(kCmiHeaderBytes + 2048);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, kCmiHeaderBytes + 2048, msg);
    });
    return m->run();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ugnirt
