#include "gemini/network.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <ostream>

#include "fault/fault.hpp"
#include "flowcontrol/flowcontrol.hpp"

namespace ugnirt::gemini {

const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kSmsg:
      return "SMSG";
    case Mechanism::kFmaPut:
      return "FMA_PUT";
    case Mechanism::kFmaGet:
      return "FMA_GET";
    case Mechanism::kBtePut:
      return "BTE_PUT";
    case Mechanism::kBteGet:
      return "BTE_GET";
  }
  return "?";
}

Network::Network(sim::Scheduler& sched, topo::Torus3D torus,
                 MachineConfig config)
    : sched_(&sched),
      torus_(std::move(torus)),
      config_(config),
      links_(torus_.total_links()),
      bte_free_(static_cast<std::size_t>(torus_.nodes()), 0) {}

SimTime LinkSchedule::reserve(SimTime earliest, SimTime duration,
                              bool* waited) {
  // Find the first idle gap of `duration` at or after `earliest`.
  SimTime candidate = earliest;
  std::size_t insert_at = 0;
  for (; insert_at < busy_.size(); ++insert_at) {
    const Busy& b = busy_[insert_at];
    if (candidate + duration <= b.start) break;  // fits before this interval
    if (b.end > candidate) candidate = b.end;    // pushed past it
  }
  if (candidate > earliest) {
    *waited = true;
    ++waits_;
    wait_ns_ += candidate - earliest;
  }
  ++reservations_;
  busy_ns_ += duration;
  busy_.insert(busy_.begin() + static_cast<std::ptrdiff_t>(insert_at),
               Busy{candidate, candidate + duration});
  // Merge touching neighbors and bound the bookkeeping.
  for (std::size_t i = 0; i + 1 < busy_.size();) {
    if (busy_[i].end >= busy_[i + 1].start) {
      busy_[i].end = std::max(busy_[i].end, busy_[i + 1].end);
      busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
  while (busy_.size() > kMaxIntervals) {
    // Merge the pair with the smallest gap (over-reserves slightly).
    std::size_t best = 0;
    SimTime best_gap = kNever;
    for (std::size_t i = 0; i + 1 < busy_.size(); ++i) {
      SimTime gap = busy_[i + 1].start - busy_[i].end;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    busy_[best].end = busy_[best + 1].end;
    busy_.erase(busy_.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }
  return candidate;
}

std::vector<topo::LinkId> Network::pick_route(int from, int to) {
  if (!estimator_ || !estimator_->config().adaptive_routing) {
    return torus_.route(from, to);
  }
  // Minimal adaptive routing: every permutation of the dimension
  // correction order is a minimal route; score each by the summed EWMA
  // load of its links and keep the coolest.  The stock x->y->z order is
  // scored first and wins ties, so an unloaded network routes exactly
  // as stock (and so does any route confined to one dimension, where
  // all permutations coincide).
  static constexpr std::array<std::array<int, 3>, 6> kOrders = {{
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
  }};
  auto score = [this](const std::vector<topo::LinkId>& route) {
    double s = 0.0;
    for (const auto& link : route) {
      s += estimator_->link_load(topo::link_index(link));
    }
    return s;
  };
  std::vector<topo::LinkId> best = torus_.route_order(from, to, kOrders[0]);
  double best_score = score(best);
  bool rerouted = false;
  for (std::size_t i = 1; i < kOrders.size(); ++i) {
    std::vector<topo::LinkId> cand =
        torus_.route_order(from, to, kOrders[i]);
    double s = score(cand);
    if (s < best_score) {
      best = std::move(cand);
      best_score = s;
      rerouted = true;
    }
  }
  if (rerouted) ++stats_.adaptive_reroutes;
  return best;
}

SimTime Network::reserve_route(int from, int to, SimTime duration,
                               SimTime earliest) {
  if (from == to) return earliest;  // NIC loopback: no torus links used
  // Each Gemini ASIC serves two nodes over the Netlink (paper Fig 2):
  // traffic between ASIC siblings never enters the torus.
  if (from / 2 == to / 2) return earliest;
  auto route = pick_route(from, to);
  // Cut-through pipelining: the head flit claims each link as it reaches
  // it, so congestion on a link only delays *downstream* hops, and idle
  // gaps before future-dated reservations are backfilled.
  SimTime cursor = earliest;
  bool waited = false;
  SimTime route_wait = 0;
  for (const auto& link : route) {
    const std::size_t idx = topo::link_index(link);
    const SimTime start = links_[idx].reserve(cursor, duration, &waited);
    if (estimator_) {
      estimator_->on_link_reserve(idx, from, start - cursor, duration,
                                  earliest);
    }
    route_wait += start - cursor;
    cursor = start;
  }
  if (waited) ++stats_.link_conflicts;
  if (!job_of_node_.empty()) {
    // Tenancy attribution: charge the reservation (and its queueing) to
    // the initiating node's job.  Rendezvous GETs initiate at the
    // receiver, which for intra-job traffic is the same job either way.
    const std::int16_t job = job_of_node_[static_cast<std::size_t>(from)];
    if (job >= 0) {
      JobLinkStats& js = job_link_[static_cast<std::size_t>(job)];
      js.reservations += route.size();
      js.wait_ns += route_wait;
    }
  }
  return cursor;
}

void Network::set_job_of_node(std::vector<std::int16_t> jobs, int num_jobs) {
  job_of_node_ = std::move(jobs);
  job_link_.assign(static_cast<std::size_t>(num_jobs), JobLinkStats{});
}

TransferTimes Network::transfer(const TransferRequest& req) {
  const MachineConfig& c = config_;
  TransferTimes t;
  ++stats_.transfers;

  const SimTime prop = propagation(req.initiator_node, req.remote_node);

  // Link faults: a blackout delays the route reservation, degradation
  // stretches serialization (both the link occupancy and the payload
  // stream, which is bottlenecked by the slowest hop).
  SimTime fault_delay = 0;
  double slowdown = 1.0;
  if (fault_ && req.initiator_node != req.remote_node) {
    fault::LinkFault lf =
        fault_->link_fault(req.initiator_node, req.remote_node, req.issue);
    fault_delay = lf.delay;
    slowdown = lf.slowdown;
  }
  auto scaled = [slowdown](SimTime d) {
    return static_cast<SimTime>(static_cast<double>(d) * slowdown);
  };

  switch (req.mech) {
    case Mechanism::kSmsg: {
      stats_.bytes_smsg += req.bytes;
      // Sender CPU writes header+payload through the FMA window.
      t.cpu_done = req.issue + c.smsg_cpu_send_ns;
      SimTime payload =
          scaled(static_cast<SimTime>(static_cast<double>(req.bytes) *
                                      c.smsg_per_byte_ns));
      SimTime wire = c.smsg_wire_startup_ns + payload;
      // Links are occupied only for the packet's wire serialization at the
      // link rate; the NIC pipeline startup is not a link resource.
      SimTime start = reserve_route(req.initiator_node, req.remote_node,
                                    scaled(transfer_time(req.bytes, c.link_bw)),
                                    t.cpu_done + fault_delay);
      t.data_arrival = start + wire + prop;
      // Delivery ack (SSID completion) returns to the sender's TX CQ.
      t.initiator_complete = t.data_arrival + prop;
      break;
    }
    case Mechanism::kFmaPut:
    case Mechanism::kFmaGet: {
      stats_.bytes_fma += req.bytes;
      const bool is_get = req.mech == Mechanism::kFmaGet;
      SimTime startup = is_get ? c.fma_get_startup_ns : c.fma_put_startup_ns;
      SimTime stream = scaled(transfer_time(req.bytes, c.fma_bw));
      // The CPU owns the FMA window for the entire payload push/pull.
      t.cpu_done = req.issue + c.fma_desc_ns + startup + stream;
      SimTime start =
          reserve_route(req.initiator_node, req.remote_node,
                        scaled(transfer_time(req.bytes, c.link_bw)),
                        req.issue + c.fma_desc_ns + startup + fault_delay);
      if (is_get) {
        // Request travels out, responses stream back to the initiator.
        t.data_arrival = start + stream + 2 * prop;
        t.initiator_complete = t.data_arrival;
        t.cpu_done = std::max(t.cpu_done, t.data_arrival);
      } else {
        t.data_arrival = start + stream + prop;
        t.initiator_complete = t.data_arrival + prop;  // network-level ack
      }
      break;
    }
    case Mechanism::kBtePut:
    case Mechanism::kBteGet: {
      stats_.bytes_bte += req.bytes;
      const bool is_get = req.mech == Mechanism::kBteGet;
      SimTime startup = is_get ? c.bte_get_startup_ns : c.bte_put_startup_ns;
      // CPU only writes the descriptor; the NIC's DMA engine does the rest.
      t.cpu_done = req.issue + c.bte_desc_ns;
      std::size_t nic = static_cast<std::size_t>(req.initiator_node);
      SimTime engine_ready = std::max(t.cpu_done, bte_free_[nic]);
      SimTime stream = scaled(transfer_time(req.bytes, c.bte_bw));
      // The DMA engine streams queued descriptors back to back; the
      // startup pipeline adds latency per transfer but does not idle the
      // engine between them.
      SimTime start = reserve_route(req.initiator_node, req.remote_node,
                                    scaled(transfer_time(req.bytes, c.link_bw)),
                                    engine_ready + fault_delay);
      bte_free_[nic] = start + stream;
      if (is_get) {
        t.data_arrival = start + startup + stream + 2 * prop;
        t.initiator_complete = t.data_arrival;
      } else {
        t.data_arrival = start + startup + stream + prop;
        t.initiator_complete = t.data_arrival + prop;
      }
      break;
    }
  }
  assert(t.data_arrival >= req.issue);
  return t;
}

void Network::collect_metrics(trace::MetricsRegistry& reg) const {
  reg.counter("net.transfers").set(stats_.transfers);
  reg.counter("net.bytes_smsg").set(stats_.bytes_smsg);
  reg.counter("net.bytes_fma").set(stats_.bytes_fma);
  reg.counter("net.bytes_bte").set(stats_.bytes_bte);
  reg.counter("net.link_conflicts").set(stats_.link_conflicts);
  std::uint64_t waits = 0;
  SimTime wait_ns = 0;
  RunningStat& busy = reg.stat("net.link_busy_ns");
  for (const LinkSchedule& link : links_) {
    if (link.reservations() == 0) continue;  // untouched links skew the mean
    waits += link.waits();
    wait_ns += link.wait_ns();
    busy.add(static_cast<double>(link.busy_ns()));
  }
  reg.counter("net.link_waits").set(waits);
  reg.counter("net.link_wait_ns").set(static_cast<std::uint64_t>(wait_ns));
  if (fault_) fault_->collect_metrics(reg);
  // Per-job link rows, only in multi-tenant runs (attribution installed)
  // so stock metric dumps stay byte-identical to single-job output.
  for (std::size_t j = 0; j < job_link_.size(); ++j) {
    const std::string prefix = "job." + std::to_string(j) + ".";
    reg.counter(prefix + "link_reservations")
        .set(job_link_[j].reservations);
    reg.counter(prefix + "link_wait_ns")
        .set(static_cast<std::uint64_t>(job_link_[j].wait_ns));
  }
  if (estimator_) {
    // Flow metrics appear only when the subsystem is installed, so stock
    // metric dumps stay byte-identical to the seed.
    reg.counter("net.adaptive_reroutes").set(stats_.adaptive_reroutes);
    estimator_->collect_metrics(reg);
  }
}

void Network::write_link_csv(std::ostream& out) const {
  out << "link,node,x,y,z,dim,dir,reservations,busy_ns,waits,wait_ns\n";
  for (std::size_t idx = 0; idx < links_.size(); ++idx) {
    const LinkSchedule& link = links_[idx];
    if (link.reservations() == 0) continue;
    // Inverse of topo::link_index: 6 directional links per node.
    int node = static_cast<int>(idx / 6);
    int dim = static_cast<int>((idx % 6) / 2);
    bool positive = (idx % 2) != 0;
    topo::Coord c = torus_.coord_of(node);
    out << idx << ',' << node << ',' << c.x << ',' << c.y << ',' << c.z
        << ',' << "xyz"[dim] << ',' << (positive ? '+' : '-') << ','
        << link.reservations() << ',' << link.busy_ns() << ','
        << link.waits() << ',' << link.wait_ns() << '\n';
  }
}

}  // namespace ugnirt::gemini
