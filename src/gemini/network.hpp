// Timing model of the Gemini interconnect.
//
// The Network answers one question for the uGNI emulation layer: given a
// transfer (mechanism, endpoints, size) issued at a virtual instant, when is
// the initiating CPU free, when does the data land, and when does the
// initiator's completion event fire?  Resource occupancy is tracked for:
//
//   * each directional torus link (FIFO reservation at message granularity,
//     so concurrent transfers crossing the same link queue up — this is what
//     makes the kNeighbor and one-to-all benchmarks show contention), and
//   * each NIC's BTE engine (one DMA channel per NIC: posted descriptors
//     execute back-to-back, matching "the responsibility of the transaction
//     is completely offloaded to the NIC").
//
// FMA transfers occupy the *initiating CPU* for the duration of the payload
// push — the paper's reason why BTE gives better overlap — which the caller
// observes through TransferTimes::cpu_done.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "gemini/machine_config.hpp"
#include "sim/scheduler.hpp"
#include "topo/torus.hpp"
#include "trace/metrics.hpp"
#include "util/units.hpp"

namespace ugnirt::fault {
class FaultInjector;
}
namespace ugnirt::flowcontrol {
class CongestionEstimator;
}

namespace ugnirt::gemini {

enum class Mechanism : std::uint8_t {
  kSmsg,    // small-message mailbox write (FMA under the hood)
  kFmaPut,  // CPU-driven put
  kFmaGet,  // CPU-driven get
  kBtePut,  // DMA-engine put
  kBteGet,  // DMA-engine get
};

const char* mechanism_name(Mechanism m);

struct TransferRequest {
  Mechanism mech = Mechanism::kSmsg;
  int initiator_node = 0;  // node whose CPU/NIC issues the transaction
  int remote_node = 0;     // the other end
  std::uint64_t bytes = 0;
  SimTime issue = 0;       // initiator's local time at the post
};

struct TransferTimes {
  /// When the initiating CPU can proceed (FMA: after pushing the payload;
  /// BTE: right after writing the descriptor; SMSG: after the mailbox write).
  SimTime cpu_done = 0;
  /// When the last byte is available at the data destination
  /// (the remote node for puts/smsg, the initiator for gets).
  SimTime data_arrival = 0;
  /// When the initiator's local CQ event fires (puts: after the network-level
  /// ack returns; gets: at data arrival).
  SimTime initiator_complete = 0;
};

struct NetworkStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes_smsg = 0;
  std::uint64_t bytes_fma = 0;
  std::uint64_t bytes_bte = 0;
  std::uint64_t link_conflicts = 0;  // transfers that had to wait for a link
  std::uint64_t adaptive_reroutes = 0;  // routes steered off the stock order
};

/// Busy intervals of one directional link, kept sorted and bounded.
/// Backfill is allowed: a transfer may slot into an idle gap before a
/// future-dated reservation (work-conserving FIFO would otherwise let one
/// late-cursor sender block the link for everyone — an artifact, not
/// physics).
class LinkSchedule {
 public:
  struct Busy {
    SimTime start;
    SimTime end;
  };
  static constexpr std::size_t kMaxIntervals = 16;

  /// Earliest start >= earliest with `duration` of idle link time;
  /// reserves it.  Sets *waited when the start had to move.
  SimTime reserve(SimTime earliest, SimTime duration, bool* waited);

  std::uint64_t reservations() const { return reservations_; }
  SimTime busy_ns() const { return busy_ns_; }
  std::uint64_t waits() const { return waits_; }
  SimTime wait_ns() const { return wait_ns_; }

  /// Snapshot of the busy list (sorted by start, non-overlapping, at
  /// most kMaxIntervals entries) — introspection for property tests.
  const std::vector<Busy>& intervals() const { return busy_; }

 private:
  std::vector<Busy> busy_;  // sorted by start, non-overlapping
  std::uint64_t reservations_ = 0;  // transfers routed over this link
  SimTime busy_ns_ = 0;             // total reserved wire time
  std::uint64_t waits_ = 0;         // reservations pushed past `earliest`
  SimTime wait_ns_ = 0;             // total queueing delay incurred
};

class Network {
 public:
  Network(sim::Scheduler& sched, topo::Torus3D torus, MachineConfig config);

  /// Compute the timing of a transfer and reserve the resources it uses.
  /// Deterministic: identical call sequences give identical times.
  TransferTimes transfer(const TransferRequest& req);

  const topo::Torus3D& torus() const { return torus_; }
  const MachineConfig& config() const { return config_; }
  /// The scheduling surface for completion/notify events.  Deliberately
  /// not the whole sim::Engine: the network is a protocol state machine,
  /// not a simulation driver.
  sim::Scheduler& scheduler() const { return *sched_; }
  const NetworkStats& stats() const { return stats_; }

  int hops(int a, int b) const { return torus_.hops(a, b); }

  /// Install (or with nullptr, remove) a fault injector.  Not owned.  When
  /// set, transfer() consults it for per-route degradation/blackout windows
  /// and the uGNI emulation reaches it through its Domain's network for
  /// post/registration/CQ/SMSG faults.
  void set_fault_injector(fault::FaultInjector* f) { fault_ = f; }
  fault::FaultInjector* fault_injector() const { return fault_; }

  /// Install (or with nullptr, remove) a congestion estimator.  Not
  /// owned.  When set, reserve_route feeds it one O(1) EWMA update per
  /// link reservation, and — when the estimator's config asks for
  /// adaptive routing — consults it to pick among minimal dimension-
  /// order route permutations by estimated link load.  When null the
  /// send path is bit-identical to stock.
  void set_congestion_estimator(flowcontrol::CongestionEstimator* e) {
    estimator_ = e;
  }
  flowcontrol::CongestionEstimator* congestion_estimator() const {
    return estimator_;
  }

  /// Introspection for tests: the schedule of one directional link.
  const LinkSchedule& link_schedule(std::size_t idx) const {
    return links_[idx];
  }

  /// Install per-node job attribution (tenancy): `jobs[node]` is the job
  /// id whose traffic initiates from that node, or -1 for unattributed
  /// (mixed or idle) nodes.  When set, reserve_route accumulates per-job
  /// link reservations and queueing, published by collect_metrics as
  /// `job.<id>.link_reservations` / `job.<id>.link_wait_ns` rows.  Empty
  /// map = stock behavior and stock metric output, bit for bit.
  void set_job_of_node(std::vector<std::int16_t> jobs, int num_jobs);

  /// Per-job link-queueing totals (tenancy introspection); index = job id.
  std::uint64_t job_link_reservations(int job) const {
    return job_link_[static_cast<std::size_t>(job)].reservations;
  }
  SimTime job_link_wait_ns(int job) const {
    return job_link_[static_cast<std::size_t>(job)].wait_ns;
  }

  /// Publish network-wide counters (net.transfers, net.bytes_*,
  /// net.link_conflicts, net.link_waits) plus per-link occupancy as a
  /// "net.link_busy_ns" distribution over links that carried traffic.
  void collect_metrics(trace::MetricsRegistry& reg) const;

  /// Per-link occupancy rows for congestion heatmaps:
  /// `link,node,x,y,z,dim,dir,reservations,busy_ns,waits,wait_ns`.
  /// Links that never carried traffic are omitted.
  void write_link_csv(std::ostream& out) const;

 private:
  /// Reserve every link on the route for `duration` starting no earlier than
  /// `earliest`; returns the actual start (>= earliest) honoring occupancy.
  SimTime reserve_route(int from, int to, SimTime duration, SimTime earliest);

  /// The links a transfer will reserve: the stock dimension-ordered
  /// route, or — under flow.adaptive_routing — the minimal dimension-
  /// order permutation with the lowest estimated load (stock order wins
  /// ties, so an idle network routes exactly as stock).
  std::vector<topo::LinkId> pick_route(int from, int to);

  /// One-way wire propagation between the nodes.
  SimTime propagation(int from, int to) const {
    return static_cast<SimTime>(torus_.hops(from, to)) * config_.hop_ns;
  }

  sim::Scheduler* sched_;
  topo::Torus3D torus_;
  MachineConfig config_;
  std::vector<LinkSchedule> links_;  // per directional link
  std::vector<SimTime> bte_free_;    // per node's BTE engine
  NetworkStats stats_;
  fault::FaultInjector* fault_ = nullptr;
  flowcontrol::CongestionEstimator* estimator_ = nullptr;
  // Tenancy attribution: per-initiator-node job ids and the per-job link
  // accounting they key.  Both empty (and free) outside multi-tenant runs.
  struct JobLinkStats {
    std::uint64_t reservations = 0;
    SimTime wait_ns = 0;
  };
  std::vector<std::int16_t> job_of_node_;
  std::vector<JobLinkStats> job_link_;
};

}  // namespace ugnirt::gemini
