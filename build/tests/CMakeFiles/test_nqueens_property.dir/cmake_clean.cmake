file(REMOVE_RECURSE
  "CMakeFiles/test_nqueens_property.dir/nqueens_property_test.cpp.o"
  "CMakeFiles/test_nqueens_property.dir/nqueens_property_test.cpp.o.d"
  "test_nqueens_property"
  "test_nqueens_property.pdb"
  "test_nqueens_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nqueens_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
