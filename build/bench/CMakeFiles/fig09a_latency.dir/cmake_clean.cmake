file(REMOVE_RECURSE
  "CMakeFiles/fig09a_latency.dir/fig09a_latency.cpp.o"
  "CMakeFiles/fig09a_latency.dir/fig09a_latency.cpp.o.d"
  "fig09a_latency"
  "fig09a_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
