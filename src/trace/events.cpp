#include "trace/events.hpp"

#include <ostream>

#include "sim/context.hpp"

namespace ugnirt::trace {

const char* event_name(Ev type) {
  switch (type) {
    case Ev::kSmsgSend:
      return "smsg_send";
    case Ev::kSmsgRecv:
      return "smsg_recv";
    case Ev::kMsgqSend:
      return "msgq_send";
    case Ev::kRdvInit:
      return "rdv_init";
    case Ev::kRdvGet:
      return "rdv_get";
    case Ev::kRdvAck:
      return "rdv_ack";
    case Ev::kFmaPost:
      return "fma_post";
    case Ev::kBtePost:
      return "bte_post";
    case Ev::kPostDone:
      return "post_done";
    case Ev::kMemReg:
      return "mem_register";
    case Ev::kMemDereg:
      return "mem_deregister";
    case Ev::kPoolHit:
      return "pool_hit";
    case Ev::kPoolMiss:
      return "pool_miss";
    case Ev::kPoolExpand:
      return "pool_expand";
    case Ev::kPersistPut:
      return "persist_put";
    case Ev::kPxshmEnq:
      return "pxshm_enqueue";
    case Ev::kPxshmDeq:
      return "pxshm_dequeue";
    case Ev::kCreditStall:
      return "credit_stall";
    case Ev::kMsgExec:
      return "msg_exec";
    case Ev::kFaultInject:
      return "fault_inject";
    case Ev::kRetryBackoff:
      return "retry_backoff";
    case Ev::kFallback:
      return "fallback";
    case Ev::kCqRecover:
      return "cq_recover";
    case Ev::kAggFlush:
      return "agg_flush";
    case Ev::kCongestionSample:
      return "congestion_sample";
    case Ev::kInjectionStall:
      return "injection_stall";
  }
  return "unknown";
}

void EventRing::push(const Event& ev) {
  if (buf_.size() < capacity_) {
    buf_.push_back(ev);
    return;
  }
  buf_[head_] = ev;
  head_ = (head_ + 1) % buf_.size();
  ++dropped_;
}

void EventTracer::record(int pe, Ev type, SimTime t, SimTime dur, int peer,
                         std::uint32_t size) {
  auto it = rings_.find(pe);
  if (it == rings_.end()) {
    it = rings_.emplace(pe, EventRing(ring_capacity_)).first;
  }
  if (it->second.size() == it->second.capacity()) {
    // The push below evicts the oldest retained event; account the loss
    // against that event's kind.
    ++dropped_by_type_[static_cast<int>(it->second.at(0).type)];
  }
  Event ev;
  ev.t = t;
  ev.dur = dur;
  ev.peer = peer;
  ev.size = size;
  ev.type = type;
  it->second.push(ev);
  ++total_events_;
  ++type_counts_[static_cast<int>(type)];
}

std::uint64_t EventTracer::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& [pe, ring] : rings_) n += ring.dropped();
  return n;
}

const EventRing* EventTracer::ring(int pe) const {
  auto it = rings_.find(pe);
  return it == rings_.end() ? nullptr : &it->second;
}

void EventTracer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [pe, ring] : rings_) {
    // Thread-name metadata so Perfetto labels rows "pe 3" / "comm -1000".
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << pe
        << ",\"args\":{\"name\":\"" << (pe < 0 ? "comm " : "pe ") << pe
        << "\"}}";
    const bool jobs = !job_of_pe_.empty();
    const int job = job_of(pe);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Event& ev = ring.at(i);
      // trace_event timestamps are microseconds (double); ours are ns.
      out << ",{\"ph\":\"X\",\"name\":\"" << event_name(ev.type)
          << "\",\"cat\":\"proto\",\"pid\":0,\"tid\":" << pe
          << ",\"ts\":" << static_cast<double>(ev.t) / 1000.0
          << ",\"dur\":" << static_cast<double>(ev.dur) / 1000.0
          << ",\"args\":{\"peer\":" << ev.peer << ",\"size\":" << ev.size;
      if (jobs) out << ",\"job\":" << job;
      out << "}}";
    }
  }
  out << "]}";
}

void EventTracer::write_csv(std::ostream& out) const {
  // The `job` column appears only when tenancy installed an attribution
  // map, so single-job exports stay byte-identical to stock.
  const bool jobs = !job_of_pe_.empty();
  out << (jobs ? "pe,t_ns,dur_ns,event,peer,size,job\n"
               : "pe,t_ns,dur_ns,event,peer,size\n");
  for (const auto& [pe, ring] : rings_) {
    const int job = job_of(pe);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Event& ev = ring.at(i);
      out << pe << ',' << ev.t << ',' << ev.dur << ','
          << event_name(ev.type) << ',' << ev.peer << ',' << ev.size;
      if (jobs) out << ',' << job;
      out << '\n';
    }
  }
}

void EventTracer::clear() {
  rings_.clear();
  total_events_ = 0;
  for (auto& c : type_counts_) c = 0;
  for (auto& c : dropped_by_type_) c = 0;
}

namespace detail {
EventTracer* g_tracer = nullptr;
}

void set_tracer(EventTracer* t) { detail::g_tracer = t; }

void emit(Ev type, SimTime t, SimTime dur, int peer, std::uint32_t size) {
  EventTracer* tr = detail::g_tracer;
  if (!tr) return;
  sim::Context* ctx = sim::current();
  if (!ctx) return;
  tr->record(ctx->pe(), type, t, dur, peer, size);
}

}  // namespace ugnirt::trace
