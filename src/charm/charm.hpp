// CHARM++-flavored layer over Converse: reductions, quiescence detection,
// seed-balanced tasks, and barriers.
//
// This is the programming surface the paper's applications use: N-Queens
// runs on seed-balanced task spawning with quiescence detection (via the
// ParSSSE state-space search framework), and NAMD-style codes use arrays of
// migratable objects with contributions/reductions.  Everything here is
// machine-layer agnostic — linking the same program against the uGNI or MPI
// layer is a MachineOptions field, exactly the paper's §V methodology.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "converse/machine.hpp"

namespace ugnirt::charm {

/// Reduction callback: receives the combined value on the root PE (0).
using ReductionCb = std::function<void(std::uint64_t)>;
using ReductionCbD = std::function<void(double)>;

/// Task body: runs on the PE the seed landed on, with the payload bytes.
using TaskFn = std::function<void(const void* payload, std::uint32_t bytes)>;

class Charm {
 public:
  explicit Charm(converse::Machine& machine);
  Charm(const Charm&) = delete;
  Charm& operator=(const Charm&) = delete;

  converse::Machine& machine() { return *machine_; }

  // ---- registration (call before machine().run()) ----

  /// Register a task type; seeds of this type can be fired at any PE.
  int register_task(TaskFn fn);

  /// Register a sum-reduction; every PE must contribute once per round.
  /// The callback fires on PE 0 with the total.
  int register_reduction_sum(ReductionCb at_root);
  int register_reduction_sum_d(ReductionCbD at_root);
  /// Max-reduction over u64 values.
  int register_reduction_max(ReductionCb at_root);

  // ---- task spawning (the random seed balancer, paper §V-C) ----

  /// Fire a task seed at a uniformly random PE (current PE's RNG stream).
  void seed_task(int task_id, const void* payload, std::uint32_t bytes);
  /// Fire a task seed at a specific PE.
  void seed_task_to(int pe, int task_id, const void* payload,
                    std::uint32_t bytes);

  // ---- reductions ----

  /// Contribute this PE's value to round `round` of reduction `red_id`.
  /// Rounds are implicit: the n-th contribute on a PE joins round n.
  void contribute(int red_id, std::uint64_t value);
  void contribute_d(int red_id, double value);

  // ---- quiescence detection (Sinha–Kalé counting scheme) ----

  /// Start QD; `cb` fires on PE 0 when no non-system messages are in
  /// flight or pending anywhere.  Only one detection may be active.
  void start_quiescence(std::function<void()> cb);

  /// Number of QD waves the last detection needed (for tests).
  int qd_waves() const { return qd_waves_; }

 private:
  struct Reduction {
    ReductionCb cb_u64;
    ReductionCbD cb_d;
    bool is_double = false;
    bool is_max = false;
    // Per-PE round counters and per-round partial state live in flat maps
    // keyed by round (rounds complete quickly; map stays tiny).
    struct Round {
      std::uint64_t acc_u64 = 0;
      double acc_d = 0;
      int contributions = 0;  // contributions received at this PE
    };
    // Indexed [pe][round] lazily.
    std::vector<std::vector<Round>> state;     // combine state per PE
    std::vector<std::uint64_t> next_round;     // per PE: next round to join
  };

  void reduction_arrive(int red_id, int pe, std::uint64_t round,
                        std::uint64_t vu, double vd);
  int expected_contributions(int pe) const;

  /// Per-PE fan-in state for the current QD wave.
  struct QdPeRound {
    std::uint64_t round = 0;
    std::uint64_t created = 0;
    std::uint64_t processed = 0;
    int reports = 0;  // PEs aggregated so far (self + child subtrees)
    bool wave_seen = false;
    bool valid = false;
  };

  void qd_start_wave();
  QdPeRound& qd_slot(int pe, std::uint64_t round);
  void qd_try_forward(int pe);

  converse::Machine* machine_;
  int task_handler_ = -1;
  int reduction_handler_ = -1;
  int qd_wave_handler_ = -1;
  int qd_report_handler_ = -1;

  std::vector<TaskFn> tasks_;
  std::vector<Reduction> reductions_;

  // QD state (root = PE 0).
  std::function<void()> qd_cb_;
  bool qd_active_ = false;
  std::uint64_t qd_round_ = 0;
  std::uint64_t qd_created_ = 0;
  std::uint64_t qd_processed_ = 0;
  int qd_reports_ = 0;
  std::uint64_t qd_prev_created_ = ~0ull;
  std::uint64_t qd_prev_processed_ = ~0ull;
  int qd_waves_ = 0;
  std::vector<QdPeRound> qd_pe_;
};

}  // namespace ugnirt::charm
