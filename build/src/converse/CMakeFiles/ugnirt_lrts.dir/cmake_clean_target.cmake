file(REMOVE_RECURSE
  "libugnirt_lrts.a"
)
