#include "ugni/ugni.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "fault/fault.hpp"
#include "trace/events.hpp"
#include "ugni/msgq.hpp"
#include "util/log.hpp"

namespace ugnirt::ugni {

namespace {

/// Per-message system header bytes on the wire (SMSG prepends routing and
/// sequence metadata to every mailbox write).
constexpr std::uint32_t kSmsgSysHeader = 16;

sim::Context& ctx() {
  sim::Context* c = sim::current();
  assert(c && "uGNI calls must run inside a simulated PE context");
  return *c;
}

fault::FaultInjector* injector(const Nic* nic) {
  return nic->domain()->network().fault_injector();
}

void emit_fault(SimTime t, int peer, std::uint32_t size) {
  if (trace::enabled()) {
    trace::emit(trace::Ev::kFaultInject, t, 0, peer, size);
  }
}

}  // namespace

namespace detail {

void check_fail(gni_return_t rc, const char* what) {
  UGNIRT_ERROR("uGNI contract violation: " << what << " returned "
                                           << gni_err_str(rc));
  std::fprintf(stderr, "ugni::check: %s returned %s\n", what,
               gni_err_str(rc));
  std::abort();
}

}  // namespace detail

const char* gni_err_str(gni_return_t rc) {
  switch (rc) {
    case GNI_RC_SUCCESS:
      return "GNI_RC_SUCCESS";
    case GNI_RC_NOT_DONE:
      return "GNI_RC_NOT_DONE";
    case GNI_RC_INVALID_PARAM:
      return "GNI_RC_INVALID_PARAM";
    case GNI_RC_ERROR_RESOURCE:
      return "GNI_RC_ERROR_RESOURCE";
    case GNI_RC_ILLEGAL_OP:
      return "GNI_RC_ILLEGAL_OP";
    case GNI_RC_PERMISSION_ERROR:
      return "GNI_RC_PERMISSION_ERROR";
    case GNI_RC_INVALID_STATE:
      return "GNI_RC_INVALID_STATE";
    case GNI_RC_TRANSACTION_ERROR:
      return "GNI_RC_TRANSACTION_ERROR";
    case GNI_RC_SIZE_ERROR:
      return "GNI_RC_SIZE_ERROR";
    case GNI_RC_ALIGNMENT_ERROR:
      return "GNI_RC_ALIGNMENT_ERROR";
  }
  return "GNI_RC_?";
}

// ---------------------------------------------------------------------------
// Cq
// ---------------------------------------------------------------------------

void Cq::push(SimTime at, gni_cq_entry_t entry) {
  fault::FaultInjector* f = injector(nic_);
  const bool forced = entries_.size() < capacity_ && f &&
                      f->inject_cq_overrun(nic_->inst_id());
  if (entries_.size() >= capacity_ || forced) {
    // Real hardware sets an overrun bit and drops; runtimes must size CQs
    // (or recover via GNI_CqErrorRecover).  Still fire the notify hook so
    // a sleeping PE wakes up, observes ERROR_RESOURCE, and can recover.
    overrun_ = true;
    ++dropped_events_;
    if (forced) emit_fault(at, entry.source_inst, 0);
    if (notify_) {
      nic_->domain()->scheduler().schedule_at(at, [this, at] { notify_(at); });
    }
    return;
  }
  if (entries_.size() + 1 > max_depth_) max_depth_ = entries_.size() + 1;
  // Insert keeping arrival order (usually appends; out-of-order arrivals
  // happen when a short transfer overtakes a long one).
  auto it = entries_.end();
  while (it != entries_.begin() && std::prev(it)->at > at) --it;
  entries_.insert(it, Timed{at, entry});
  if (notify_) {
    nic_->domain()->scheduler().schedule_at(
        at, [this, at] { notify_(at); });
  }
}

// ---------------------------------------------------------------------------
// Domain / Nic basics
// ---------------------------------------------------------------------------

Domain::~Domain() {
  for (auto& nic : nics_) {
    delete nic->msgq();
    nic->set_msgq(nullptr);
  }
}

Nic* Domain::nic_by_inst(std::int32_t inst_id) const {
  auto it = nic_index_.find(inst_id);
  return it == nic_index_.end() ? nullptr : it->second;
}

void Domain::collect_metrics(trace::MetricsRegistry& reg) const {
  std::uint64_t registered = 0;
  std::uint64_t regions = 0;
  for (const auto& nic : nics_) {
    registered += nic->registered_bytes();
    regions += nic->active_regions();
  }
  reg.gauge("ugni.mailbox_bytes")
      .set(static_cast<double>(total_mailbox_bytes()));
  reg.gauge("ugni.registered_bytes").set(static_cast<double>(registered));
  reg.gauge("ugni.active_regions").set(static_cast<double>(regions));
  reg.gauge("ugni.smsg_channels").set(static_cast<double>(smsg_channels_));
  std::size_t max_depth = 0;
  std::uint64_t dropped = 0;
  for (const auto& cq : cqs_) {
    max_depth = std::max(max_depth, cq->max_depth());
    dropped += cq->dropped_events();
  }
  reg.gauge("cq.max_depth").set(static_cast<double>(max_depth));
  reg.counter("cq.dropped_events").set(dropped);
  reg.counter("cq.count").set(cqs_.size());
  network_->collect_metrics(reg);
}

Ep* Nic::ep_for_peer(std::int32_t remote_inst) const {
  auto it = peer_eps_.find(remote_inst);
  return it == peer_eps_.end() ? nullptr : it->second;
}

Ep* Nic::get_or_connect(std::int32_t peer, bool* established_out) {
  if (established_out) *established_out = false;
  if (Ep* ep = ep_for_peer(peer)) return ep;
  Nic* remote = domain_->nic_by_inst(peer);
  if (!remote || !default_tx_cq_) return nullptr;

  Ep* fwd = nullptr;
  gni_return_t rc = GNI_EpCreate(this, default_tx_cq_, &fwd);
  assert(rc == GNI_RC_SUCCESS);
  rc = GNI_EpBind(fwd, peer);
  assert(rc == GNI_RC_SUCCESS);
  const bool msgq_mode = msgq_ != nullptr;
  if (!msgq_mode) {
    rc = GNI_SmsgInit(fwd, smsg_attr_, remote->smsg_attr_);
    assert(rc == GNI_RC_SUCCESS);
  }

  // The reverse endpoint materializes on the peer NIC as part of the
  // same first touch (out-of-band datagrams in the real dynamic setup).
  if (!remote->ep_for_peer(inst_id_)) {
    Ep* rev = nullptr;
    rc = GNI_EpCreate(remote, remote->default_tx_cq_, &rev);
    assert(rc == GNI_RC_SUCCESS);
    rc = GNI_EpBind(rev, inst_id_);
    assert(rc == GNI_RC_SUCCESS);
    if (remote->msgq_ == nullptr) {
      rc = GNI_SmsgInit(rev, remote->smsg_attr_, smsg_attr_);
      assert(rc == GNI_RC_SUCCESS);
    }
  }
  (void)rc;
  if (!msgq_mode) {
    // Both mailboxes are pinned now, and the whole setup bill lands on
    // the initiator's clock at first-touch time (MSGQ pins none).
    const std::uint64_t mbox =
        static_cast<std::uint64_t>(smsg_attr_.mbox_maxcredit) *
        (smsg_attr_.msg_maxsize + kSmsgSysHeader);
    ctx().charge(2 * domain_->config().reg_cost(mbox));
  }
  if (established_out) *established_out = true;
  return fwd;
}

bool Nic::handle_valid(const gni_mem_handle_t& h, std::uint64_t addr,
                       std::uint64_t len) const {
  const Region* r = region_of(h);
  if (!r || !r->valid) return false;
  return addr >= r->addr && addr + len <= r->addr + r->length;
}

Nic::Region* Nic::region_of(const gni_mem_handle_t& h) {
  return const_cast<Region*>(
      static_cast<const Nic*>(this)->region_of(h));
}

const Nic::Region* Nic::region_of(const gni_mem_handle_t& h) const {
  std::uint32_t owner = static_cast<std::uint32_t>(h.qword1 >> 32);
  std::uint32_t idx = static_cast<std::uint32_t>(h.qword1 & 0xffffffffu);
  if (owner != static_cast<std::uint32_t>(inst_id_)) return nullptr;
  if (idx == 0 || idx > regions_.size()) return nullptr;
  const Region& r = regions_[idx - 1];
  if (r.generation != static_cast<std::uint32_t>(h.qword2)) return nullptr;
  return &r;
}

// ---------------------------------------------------------------------------
// API
// ---------------------------------------------------------------------------

gni_return_t GNI_CdmAttach(Domain* domain, std::int32_t inst_id, int node,
                           gni_nic_handle_t* nic_out) {
  if (!domain || !nic_out || inst_id < 0) return GNI_RC_INVALID_PARAM;
  if (node < 0 || node >= domain->network().torus().nodes()) {
    return GNI_RC_INVALID_PARAM;
  }
  if (domain->nic_by_inst(inst_id)) return GNI_RC_INVALID_STATE;
  domain->nics_.push_back(std::make_unique<Nic>(domain, inst_id, node));
  *nic_out = domain->nics_.back().get();
  domain->nic_index_.emplace(inst_id, *nic_out);
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_CqCreate(gni_nic_handle_t nic, std::uint32_t entry_count,
                          gni_cq_handle_t* cq_out) {
  if (!nic || !cq_out || entry_count == 0) return GNI_RC_INVALID_PARAM;
  nic->domain()->cqs_.push_back(std::make_unique<Cq>(nic, entry_count));
  *cq_out = nic->domain()->cqs_.back().get();
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_CqDestroy(gni_cq_handle_t cq) {
  if (!cq) return GNI_RC_INVALID_PARAM;
  cq->set_notify(nullptr);
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_CqGetEvent(gni_cq_handle_t cq, gni_cq_entry_t* event_out) {
  if (!cq || !event_out) return GNI_RC_INVALID_PARAM;
  sim::Context& c = ctx();
  const auto& mc = cq->nic()->domain()->config();
  c.charge(mc.cq_poll_ns);
  if (cq->overrun_) return GNI_RC_ERROR_RESOURCE;
  if (cq->entries_.empty() || cq->entries_.front().at > c.now()) {
    return GNI_RC_NOT_DONE;
  }
  c.charge(mc.cq_event_ns);
  *event_out = cq->entries_.front().entry;
  cq->entries_.pop_front();
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_CqGetEvents(gni_cq_handle_t cq, gni_cq_entry_t* event_out,
                             std::uint32_t max_events,
                             std::uint32_t* count_out) {
  if (!cq || !event_out || !count_out || max_events == 0) {
    return GNI_RC_INVALID_PARAM;
  }
  sim::Context& c = ctx();
  const auto& mc = cq->nic()->domain()->config();
  std::uint32_t n = 0;
  // Charge-exact with the open-coded GNI_CqGetEvent loop: every
  // iteration pays the poll (including the final failed one), each
  // harvested event pays cq_event on top.  Visibility is re-evaluated
  // against the cursor each iteration, so an entry arriving inside the
  // harvest window is picked up exactly when the loop would see it.
  while (n < max_events) {
    c.charge(mc.cq_poll_ns);
    if (cq->overrun_) {
      *count_out = n;
      return GNI_RC_ERROR_RESOURCE;
    }
    if (cq->entries_.empty() || cq->entries_.front().at > c.now()) {
      *count_out = n;
      return GNI_RC_NOT_DONE;
    }
    c.charge(mc.cq_event_ns);
    event_out[n++] = cq->entries_.front().entry;
    cq->entries_.pop_front();
  }
  *count_out = n;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_CqErrorRecover(gni_cq_handle_t cq,
                                std::uint32_t* recovered_out) {
  if (!cq) return GNI_RC_INVALID_PARAM;
  if (recovered_out) *recovered_out = 0;
  if (!cq->overrun_) return GNI_RC_SUCCESS;
  sim::Context& c = ctx();
  Nic* nic = cq->nic_;
  const auto& mc = nic->domain()->config();
  // The driver walks the CQ memory to find the write pointer and rebuilds
  // its view; model that as a poll plus one event cost per queued entry.
  c.charge(mc.cq_poll_ns +
           static_cast<SimTime>(cq->entries_.size()) * mc.cq_event_ns);
  cq->overrun_ = false;

  std::uint32_t recovered = 0;
  auto push_direct = [&](SimTime at, const gni_cq_entry_t& entry) {
    // Insert bypassing Cq::push: recovery must not itself be dropped (the
    // queue has been drained by the owner before recovering) and must not
    // re-roll the fault injector.
    auto it = cq->entries_.end();
    while (it != cq->entries_.begin() && std::prev(it)->at > at) --it;
    cq->entries_.insert(it, Cq::Timed{at, entry});
    if (cq->entries_.size() > cq->max_depth_) {
      cq->max_depth_ = cq->entries_.size();
    }
    ++recovered;
  };

  // Dropped SMSG arrival events: every undelivered mailbox message must
  // have exactly one kSmsg event queued; re-synthesize the missing ones.
  // Peers are visited in sorted order — unordered_map iteration order is
  // not deterministic across runs and would break trace reproducibility.
  if (nic->smsg_rx_cq_ == cq) {
    std::vector<std::int32_t> peers;
    peers.reserve(nic->peer_eps_.size());
    for (const auto& [peer, ep] : nic->peer_eps_) peers.push_back(peer);
    std::sort(peers.begin(), peers.end());
    for (std::int32_t peer : peers) {
      Ep* ep = nic->peer_eps_.at(peer);
      std::size_t queued = 0;
      for (const auto& te : cq->entries_) {
        if (te.entry.type == CqEventType::kSmsg &&
            te.entry.source_inst == peer) {
          ++queued;
        }
      }
      for (const auto& msg : ep->smsg_.rx) {
        if (msg.delivered) continue;
        if (queued > 0) {
          --queued;  // this message still has its original event
          continue;
        }
        gni_cq_entry_t entry;
        entry.type = CqEventType::kSmsg;
        entry.data = 0;
        entry.source_inst = peer;
        push_direct(std::max(msg.at, c.now()), entry);
      }
    }
  }

  // Dropped local-completion events: any descriptor still sitting in the
  // NIC's completed table without a queued kPostLocal event lost its
  // notification.  (GNI_GetCompleted removes claimed descriptors, so a
  // consumed event can never be duplicated here.)  kPostRemote events are
  // not recoverable — nothing on the receiving NIC records them.
  bool serves_tx = false;
  for (const auto& [peer, ep] : nic->peer_eps_) {
    if (ep->tx_cq_ == cq) {
      serves_tx = true;
      break;
    }
  }
  if (serves_tx) {
    for (const auto& [internal, desc] : nic->completed_) {
      bool queued = false;
      for (const auto& te : cq->entries_) {
        if (te.entry.type == CqEventType::kPostLocal &&
            te.entry.data == internal) {
          queued = true;
          break;
        }
      }
      if (queued) continue;
      gni_cq_entry_t entry;
      entry.type = CqEventType::kPostLocal;
      entry.data = internal;
      entry.source_inst = nic->inst_id_;
      push_direct(c.now(), entry);
    }
  }

  if (trace::enabled()) {
    trace::emit(trace::Ev::kCqRecover, c.now(), 0, /*peer=*/-1, recovered);
  }
  if (recovered_out) *recovered_out = recovered;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_CqWaitEvent(gni_cq_handle_t cq, gni_cq_entry_t* event_out) {
  if (!cq || !event_out) return GNI_RC_INVALID_PARAM;
  sim::Context& c = ctx();
  if (cq->overrun_) return GNI_RC_ERROR_RESOURCE;
  if (cq->entries_.empty()) return GNI_RC_NOT_DONE;
  // Spin (in virtual time) until the in-flight event lands.
  c.wait_until(cq->entries_.front().at);
  return GNI_CqGetEvent(cq, event_out);
}

gni_return_t GNI_MemRegister(gni_nic_handle_t nic, std::uint64_t address,
                             std::uint64_t length, gni_cq_handle_t dst_cq,
                             std::uint32_t /*flags*/,
                             gni_mem_handle_t* hndl_out) {
  if (!nic || !hndl_out || length == 0 || address == 0) {
    return GNI_RC_INVALID_PARAM;
  }
  sim::Context& c = ctx();
  const auto& mc = nic->domain()->config();
  if (fault::FaultInjector* f = injector(nic);
      f && f->inject_reg_error(nic->inst_id())) {
    // MDD/TLB entries exhausted: the failed attempt still pays the setup
    // trap into the driver, but no pages are pinned.
    c.charge(mc.mem_reg_base_ns);
    emit_fault(c.now(), -1,
               static_cast<std::uint32_t>(
                   std::min<std::uint64_t>(length, UINT32_MAX)));
    return GNI_RC_ERROR_RESOURCE;
  }
  const SimTime t0 = c.now();
  c.charge(mc.reg_cost(length));
  if (trace::enabled()) {
    trace::emit(trace::Ev::kMemReg, t0, c.now() - t0, /*peer=*/-1,
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    length, UINT32_MAX)));
  }
  nic->regions_.push_back(Nic::Region{
      address, length, static_cast<std::uint32_t>(nic->regions_.size()) + 7u,
      true, dst_cq});
  nic->registered_bytes_ += length;
  ++nic->n_active_regions_;
  hndl_out->qword1 =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(nic->inst_id()))
       << 32) |
      static_cast<std::uint64_t>(nic->regions_.size());
  hndl_out->qword2 = nic->regions_.back().generation;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_MemDeregister(gni_nic_handle_t nic, gni_mem_handle_t* hndl) {
  if (!nic || !hndl) return GNI_RC_INVALID_PARAM;
  Nic::Region* r = nic->region_of(*hndl);
  if (!r || !r->valid) return GNI_RC_INVALID_PARAM;
  sim::Context& c = ctx();
  const auto& mc = nic->domain()->config();
  const SimTime t0 = c.now();
  c.charge(mc.dereg_cost(r->length));
  if (trace::enabled()) {
    trace::emit(trace::Ev::kMemDereg, t0, c.now() - t0, /*peer=*/-1,
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    r->length, UINT32_MAX)));
  }
  r->valid = false;
  ++r->generation;  // future uses of the stale handle fail validation
  nic->registered_bytes_ -= r->length;
  --nic->n_active_regions_;
  hndl->qword1 = 0;
  hndl->qword2 = 0;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_EpCreate(gni_nic_handle_t nic, gni_cq_handle_t tx_cq,
                          gni_ep_handle_t* ep_out) {
  if (!nic || !ep_out) return GNI_RC_INVALID_PARAM;
  nic->domain()->eps_.push_back(std::make_unique<Ep>(nic, tx_cq));
  *ep_out = nic->domain()->eps_.back().get();
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_EpBind(gni_ep_handle_t ep, std::int32_t remote_inst_id) {
  if (!ep || remote_inst_id < 0) return GNI_RC_INVALID_PARAM;
  if (ep->bound()) return GNI_RC_INVALID_STATE;
  ep->remote_inst_ = remote_inst_id;
  ep->nic_->peer_eps_[remote_inst_id] = ep;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_EpDestroy(gni_ep_handle_t ep) {
  if (!ep) return GNI_RC_INVALID_PARAM;
  if (ep->smsg_.initialized) {
    // Tearing down an initialized channel releases its receive mailbox:
    // the accounting must track *established* channels, not history.
    const std::uint64_t mbox =
        static_cast<std::uint64_t>(ep->smsg_.local.mbox_maxcredit) *
        (ep->smsg_.local.msg_maxsize + kSmsgSysHeader);
    ep->nic_->mailbox_bytes_ -= mbox;
    ep->nic_->domain_->total_mailbox_bytes_ -= mbox;
    --ep->nic_->domain_->smsg_channels_;
    ep->smsg_.initialized = false;
  }
  if (ep->bound()) ep->nic_->peer_eps_.erase(ep->remote_inst_);
  ep->remote_inst_ = -1;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_SmsgInit(gni_ep_handle_t ep, const gni_smsg_attr_t& local,
                          const gni_smsg_attr_t& remote) {
  if (!ep || !ep->bound()) return GNI_RC_INVALID_PARAM;
  if (ep->smsg_.initialized) return GNI_RC_INVALID_STATE;
  if (local.msg_maxsize == 0 || local.mbox_maxcredit == 0) {
    return GNI_RC_INVALID_PARAM;
  }
  ep->smsg_.initialized = true;
  ep->smsg_.local = local;
  ep->smsg_.remote = remote;
  ep->smsg_.credits = remote.mbox_maxcredit;
  // The mailbox for the *local* receive side is allocated and registered on
  // this NIC; memory grows linearly with *connected* peers (paper §II-B) —
  // under lazy setup that is the active pairs, never the job size.
  const std::uint64_t mbox = static_cast<std::uint64_t>(local.mbox_maxcredit) *
                             (local.msg_maxsize + kSmsgSysHeader);
  ep->nic_->mailbox_bytes_ += mbox;
  ep->nic_->domain_->total_mailbox_bytes_ += mbox;
  ++ep->nic_->domain_->smsg_channels_;
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_SmsgSendWTag(gni_ep_handle_t ep, const void* header,
                              std::uint32_t header_length, const void* data,
                              std::uint32_t data_length, std::uint32_t msg_id,
                              std::uint8_t tag) {
  (void)msg_id;
  if (!ep || !ep->bound() || !ep->smsg_.initialized) {
    return GNI_RC_INVALID_PARAM;
  }
  if ((header_length > 0 && !header) || (data_length > 0 && !data)) {
    return GNI_RC_INVALID_PARAM;
  }
  const std::uint32_t total = header_length + data_length;
  if (total > ep->smsg_.remote.msg_maxsize) return GNI_RC_SIZE_ERROR;
  if (ep->smsg_.credits == 0) return GNI_RC_NOT_DONE;

  Nic* nic = ep->nic_;
  Domain* dom = nic->domain();
  Nic* remote = dom->nic_by_inst(ep->remote_inst_);
  if (!remote) return GNI_RC_INVALID_PARAM;
  Ep* remote_ep = remote->ep_for_peer(nic->inst_id());
  if (!remote_ep || !remote_ep->smsg_.initialized) {
    return GNI_RC_INVALID_STATE;  // peer has not set up its mailbox
  }

  sim::Context& c = ctx();
  if (fault::FaultInjector* f = injector(nic)) {
    // A starvation window models the peer falling behind on releases: the
    // channel behaves exactly like credit exhaustion (GNI_RC_NOT_DONE).
    if (f->smsg_starved(nic->inst_id(), ep->remote_inst_, c.now())) {
      return GNI_RC_NOT_DONE;
    }
    if (f->inject_smsg_error(nic->inst_id())) {
      // SSID pool exhausted: the send trap burns CPU but nothing is sent.
      c.charge(dom->config().smsg_cpu_send_ns);
      emit_fault(c.now(), ep->remote_inst_, total);
      return GNI_RC_ERROR_RESOURCE;
    }
  }
  --ep->smsg_.credits;

  gemini::TransferRequest req;
  req.mech = gemini::Mechanism::kSmsg;
  req.initiator_node = nic->node();
  req.remote_node = remote->node();
  req.bytes = total + kSmsgSysHeader;
  req.issue = c.now();
  gemini::TransferTimes t = dom->network().transfer(req);
  c.wait_until(t.cpu_done);

  // SMSG is a FIFO channel: a message posted later can never become
  // visible before an earlier one, even if the network model found it a
  // faster slot.
  SimTime arrival =
      std::max(t.data_arrival, remote_ep->smsg_.last_arrival);
  remote_ep->smsg_.last_arrival = arrival;

  // Deposit the message bytes in the peer's mailbox (visible at arrival).
  SmsgChannelState::Msg msg;
  msg.bytes.resize(total);
  if (header_length) std::memcpy(msg.bytes.data(), header, header_length);
  if (data_length) {
    std::memcpy(msg.bytes.data() + header_length, data, data_length);
  }
  msg.tag = tag;
  msg.at = arrival;
  remote_ep->smsg_.rx.push_back(std::move(msg));

  if (remote->smsg_rx_cq_) {
    gni_cq_entry_t entry;
    entry.type = CqEventType::kSmsg;
    entry.data = 0;
    entry.source_inst = nic->inst_id();
    remote->smsg_rx_cq_->push(arrival, entry);
  }
  if (trace::enabled()) {
    trace::emit(trace::Ev::kSmsgSend, req.issue, arrival - req.issue,
                ep->remote_inst_, total);
  }
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_SmsgGetNextWTag(gni_ep_handle_t ep, void** data_out,
                                 std::uint8_t* tag_out,
                                 SimTime* arrival_out) {
  if (!ep || !data_out || !tag_out) return GNI_RC_INVALID_PARAM;
  if (!ep->smsg_.initialized) return GNI_RC_INVALID_PARAM;
  sim::Context& c = ctx();
  for (auto& msg : ep->smsg_.rx) {
    if (msg.delivered) continue;
    if (msg.at > c.now()) break;  // not yet arrived in virtual time
    msg.delivered = true;
    *data_out = msg.bytes.data();
    *tag_out = msg.tag;
    if (arrival_out) *arrival_out = msg.at;
    if (trace::enabled()) {
      trace::emit(trace::Ev::kSmsgRecv, c.now(), 0, ep->remote_inst_,
                  static_cast<std::uint32_t>(msg.bytes.size()));
    }
    return GNI_RC_SUCCESS;
  }
  return GNI_RC_NOT_DONE;
}

gni_return_t GNI_SmsgRelease(gni_ep_handle_t ep) {
  if (!ep || !ep->smsg_.initialized) return GNI_RC_INVALID_PARAM;
  auto& rx = ep->smsg_.rx;
  if (rx.empty() || !rx.front().delivered) return GNI_RC_INVALID_STATE;
  rx.pop_front();

  // Return one credit to the sender after a wire delay (piggybacked on the
  // next reverse-direction traffic in real SMSG; modeled as a small event).
  Nic* nic = ep->nic_;
  Domain* dom = nic->domain();
  Nic* remote = dom->nic_by_inst(ep->remote_inst_);
  if (remote) {
    Ep* sender_ep = remote->ep_for_peer(nic->inst_id());
    if (sender_ep) {
      SimTime prop = static_cast<SimTime>(dom->network().hops(
                         nic->node(), remote->node())) *
                     dom->config().hop_ns;
      SimTime at = ctx().now() + prop;
      dom->scheduler().schedule_at(at, [sender_ep, remote, at] {
        ++sender_ep->smsg_.credits;
        if (remote->credit_notify_) remote->credit_notify_(at);
      });
    }
  }
  return GNI_RC_SUCCESS;
}

namespace detail {

gni_return_t post_transaction(Ep* ep, gni_post_descriptor_t* desc,
                              bool is_rdma) {
  if (!ep || !desc || !ep->bound()) return GNI_RC_INVALID_PARAM;
  Nic* nic = ep->nic();
  Domain* dom = nic->domain();
  Nic* remote = dom->nic_by_inst(ep->remote_inst());
  if (!remote) return GNI_RC_INVALID_PARAM;

  const bool is_amo = desc->type == GNI_POST_AMO;
  if (is_amo && is_rdma) return GNI_RC_ILLEGAL_OP;  // AMOs are FMA-only
  if (is_amo && desc->length != 8) return GNI_RC_ALIGNMENT_ERROR;
  if (!is_amo && desc->length == 0) return GNI_RC_INVALID_PARAM;

  const bool rdma_type = desc->type == GNI_POST_RDMA_PUT ||
                         desc->type == GNI_POST_RDMA_GET;
  if (rdma_type != is_rdma) return GNI_RC_INVALID_PARAM;

  // Both buffers must be registered (the defining constraint of the paper's
  // protocol design: memory info has to be exchanged before a transaction).
  if (!is_amo &&
      !nic->handle_valid(desc->local_mem_hndl, desc->local_addr,
                         desc->length)) {
    return GNI_RC_PERMISSION_ERROR;
  }
  if (!remote->handle_valid(desc->remote_mem_hndl, desc->remote_addr,
                            is_amo ? 8 : desc->length)) {
    return GNI_RC_PERMISSION_ERROR;
  }

  sim::Context& c = ctx();
  if (fault::FaultInjector* f = injector(nic);
      f && f->inject_post_error(nic->inst_id())) {
    // The adapter exhausted its link-level retries: the descriptor write
    // is charged, the transaction is not.  The initiator must re-post.
    c.charge(is_rdma ? dom->config().bte_desc_ns : dom->config().fma_desc_ns);
    emit_fault(c.now(), ep->remote_inst(),
               static_cast<std::uint32_t>(
                   std::min<std::uint64_t>(desc->length, UINT32_MAX)));
    return GNI_RC_TRANSACTION_ERROR;
  }
  gemini::TransferRequest req;
  switch (desc->type) {
    case GNI_POST_FMA_PUT:
      req.mech = gemini::Mechanism::kFmaPut;
      break;
    case GNI_POST_FMA_GET:
      req.mech = gemini::Mechanism::kFmaGet;
      break;
    case GNI_POST_RDMA_PUT:
      req.mech = gemini::Mechanism::kBtePut;
      break;
    case GNI_POST_RDMA_GET:
      req.mech = gemini::Mechanism::kBteGet;
      break;
    case GNI_POST_AMO:
      req.mech = gemini::Mechanism::kFmaGet;  // request/response round trip
      break;
  }
  req.initiator_node = nic->node();
  req.remote_node = remote->node();
  req.bytes = is_amo ? 8 : desc->length;
  req.issue = c.now();
  gemini::TransferTimes t = dom->network().transfer(req);
  c.wait_until(t.cpu_done);
  if (trace::enabled()) {
    trace::emit(is_rdma ? trace::Ev::kBtePost : trace::Ev::kFmaPost,
                req.issue, t.initiator_complete - req.issue,
                ep->remote_inst(),
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    req.bytes, UINT32_MAX)));
  }

  // Perform the actual data movement.  Buffers are stable while a
  // transaction is in flight (runtime protocol contract), so the copy can
  // execute now even though it becomes *observable* only at completion.
  const bool is_get =
      desc->type == GNI_POST_FMA_GET || desc->type == GNI_POST_RDMA_GET;
  if (is_amo) {
    auto* target = reinterpret_cast<std::uint64_t*>(desc->remote_addr);
    std::uint64_t old = *target;
    switch (desc->amo_cmd) {
      case GNI_FMA_ATOMIC_FADD:
        *target = old + desc->first_operand;
        break;
      case GNI_FMA_ATOMIC_CSWAP:
        if (old == desc->first_operand) *target = desc->second_operand;
        break;
      case GNI_FMA_ATOMIC_AND:
        *target = old & desc->first_operand;
        break;
      case GNI_FMA_ATOMIC_OR:
        *target = old | desc->first_operand;
        break;
    }
    if (desc->local_addr != 0) {
      *reinterpret_cast<std::uint64_t*>(desc->local_addr) = old;
    }
  } else if (is_get) {
    std::memcpy(reinterpret_cast<void*>(desc->local_addr),
                reinterpret_cast<const void*>(desc->remote_addr),
                desc->length);
  } else {
    std::memcpy(reinterpret_cast<void*>(desc->remote_addr),
                reinterpret_cast<const void*>(desc->local_addr),
                desc->length);
  }

  // Local completion event.
  if ((desc->cq_mode & GNI_CQMODE_LOCAL_EVENT) && ep->tx_cq()) {
    std::uint64_t internal = nic->next_internal_post_id_++;
    nic->completed_.emplace_back(internal, desc);
    gni_cq_entry_t entry;
    entry.type = CqEventType::kPostLocal;
    entry.data = internal;
    entry.source_inst = nic->inst_id();
    ep->tx_cq()->push(t.initiator_complete, entry);
  }

  // Remote event, delivered to the dst_cq of the remote registration.
  if (desc->cq_mode & GNI_CQMODE_REMOTE_EVENT) {
    if (auto* region = remote->region_of(desc->remote_mem_hndl);
        region && region->dst_cq) {
      gni_cq_entry_t entry;
      entry.type = CqEventType::kPostRemote;
      entry.data = desc->post_id;
      entry.source_inst = nic->inst_id();
      region->dst_cq->push(t.data_arrival, entry);
    }
  }
  return GNI_RC_SUCCESS;
}

}  // namespace detail

gni_return_t GNI_PostFma(gni_ep_handle_t ep, gni_post_descriptor_t* desc) {
  return detail::post_transaction(ep, desc, /*is_rdma=*/false);
}

gni_return_t GNI_PostRdma(gni_ep_handle_t ep, gni_post_descriptor_t* desc) {
  return detail::post_transaction(ep, desc, /*is_rdma=*/true);
}

gni_return_t GNI_GetCompleted(gni_cq_handle_t cq, const gni_cq_entry_t& event,
                              gni_post_descriptor_t** desc_out) {
  if (!cq || !desc_out) return GNI_RC_INVALID_PARAM;
  if (event.type != CqEventType::kPostLocal) return GNI_RC_INVALID_PARAM;
  Nic* nic = cq->nic();
  auto& done = nic->completed_;
  for (auto it = done.begin(); it != done.end(); ++it) {
    if (it->first == event.data) {
      *desc_out = it->second;
      done.erase(it);
      if (trace::enabled()) {
        if (sim::Context* c = sim::current()) {
          trace::emit(trace::Ev::kPostDone, c->now(), 0, /*peer=*/-1,
                      static_cast<std::uint32_t>(std::min<std::uint64_t>(
                          (*desc_out)->length, UINT32_MAX)));
        }
      }
      return GNI_RC_SUCCESS;
    }
  }
  return GNI_RC_INVALID_PARAM;
}

}  // namespace ugnirt::ugni
