// Figure 13: NAMD-model weak scaling — IAPP on 960 cores, DHFR on 3840,
// ApoA1 on 7680, PME every step, ms/step for both machine layers
// (paper §V-D).
#include "apps/namdmodel/namdmodel.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::namdmodel;

int main() {
  benchtool::Table table("fig13_namd_weak", "system");
  table.add_column("cores");
  table.add_column("MPI_ms_step");
  table.add_column("uGNI_ms_step");
  table.add_column("improvement_pct");

  struct Row {
    MolecularSystem system;
    int cores;
  };
  const Row rows[] = {{iapp(), 960}, {dhfr(), 3840}, {apoa1(), 7680}};

  for (const Row& row : rows) {
    auto run = [&](converse::LayerKind layer) {
      converse::MachineOptions o;
      o.pes = row.cores;
      o.layer = layer;
      NamdConfig cfg;
      cfg.system = row.system;
      return run_namd_model(o, cfg).ms_per_step;
    };
    double mpi = run(converse::LayerKind::kMpi);
    double ugni = run(converse::LayerKind::kUgni);
    table.add_row(row.system.name + "(" + std::to_string(row.cores) + ")",
                  {static_cast<double>(row.cores), mpi, ugni,
                   100.0 * (mpi - ugni) / mpi});
    std::fflush(stdout);
  }
  table.print();
  std::printf("Paper shape: ~10%% improvement on IAPP and ApoA1, up to ~18%%\n"
              "on DHFR, at step times already down near 1-2 ms.\n");
  return 0;
}
