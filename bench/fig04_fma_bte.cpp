// Figure 4: one-way latency of FMA/BTE PUT/GET, 8 B .. 4 MiB (paper §III-C).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig04_fma_bte", "msg_bytes");
  table.add_column("FMA_Put_us");
  table.add_column("FMA_Get_us");
  table.add_column("BTE_Put_us");
  table.add_column("BTE_Get_us");

  for (std::uint64_t size : benchtool::size_sweep(8, 4 * 1024 * 1024)) {
    table.add_row(
        benchtool::size_label(size),
        {to_us(bench::raw_mechanism_latency(mc, gemini::Mechanism::kFmaPut, size)),
         to_us(bench::raw_mechanism_latency(mc, gemini::Mechanism::kFmaGet, size)),
         to_us(bench::raw_mechanism_latency(mc, gemini::Mechanism::kBtePut, size)),
         to_us(bench::raw_mechanism_latency(mc, gemini::Mechanism::kBteGet, size))});
  }
  table.print();
  std::printf("Paper shape: FMA wins small sizes, BTE wins large; the\n"
              "crossover falls between 2 KiB and 8 KiB (paper quotes the\n"
              "application-visible range 2048..8192).\n");
  return 0;
}
