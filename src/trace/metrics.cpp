#include "trace/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <vector>

namespace ugnirt::trace {

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauges_[name];
    // Keep the larger of the two high-water marks; the merged "current"
    // value is the max as well (per-machine gauges are peak-style).
    mine.set(std::max(mine.max(), g.max()));
  }
  for (const auto& [name, s] : other.stats_) {
    stats_[name].merge(s);
  }
}

void MetricsRegistry::dump_table(std::ostream& out) const {
  out << "== metrics ==\n";
  for (const auto& [name, c] : counters_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << g.value() << "  (max " << g.max() << ")\n";
  }
  for (const auto& [name, s] : stats_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << s.mean() << "  (n=" << s.count()
        << " min=" << s.min() << " max=" << s.max() << ")\n";
  }
  out << std::left;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "metric,kind,count,sum,mean,min,max\n";
  for (const auto& [name, c] : counters_) {
    out << name << ",counter," << c.value() << ',' << c.value() << ','
        << c.value() << ',' << c.value() << ',' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ",gauge,1," << g.value() << ',' << g.value() << ','
        << g.value() << ',' << g.max() << '\n';
  }
  for (const auto& [name, s] : stats_) {
    out << name << ",stat," << s.count() << ',' << s.sum() << ',' << s.mean()
        << ',' << s.min() << ',' << s.max() << '\n';
  }
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  stats_.clear();
}

}  // namespace ugnirt::trace
