#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ugnirt {

namespace {

LogLevel initial_threshold() {
  const char* env = std::getenv("UGNIRT_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& threshold_ref() {
  static LogLevel level = initial_threshold();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogContextProvider g_context_provider = nullptr;
LogSink g_sink = nullptr;

}  // namespace

LogLevel log_threshold() { return threshold_ref(); }

void set_log_threshold(LogLevel level) { threshold_ref() = level; }

void set_log_context_provider(LogContextProvider provider) {
  g_context_provider = provider;
}

void set_log_sink(LogSink sink) { g_sink = sink; }

void log_message(LogLevel level, const std::string& msg) {
  char prefix[64];
  long long t_ns = 0;
  int pe = 0;
  if (g_context_provider && g_context_provider(&t_ns, &pe)) {
    std::snprintf(prefix, sizeof(prefix), "[ugnirt %s t=%lldns pe=%d]",
                  level_name(level), t_ns, pe);
  } else {
    std::snprintf(prefix, sizeof(prefix), "[ugnirt %s]", level_name(level));
  }
  if (g_sink) {
    g_sink(level, std::string(prefix) + " " + msg);
    return;
  }
  std::fprintf(stderr, "%s %s\n", prefix, msg.c_str());
}

}  // namespace ugnirt
