// Full-machine scale properties (ISSUE: O(1) calendar event queue + lazy
// per-peer uGNI state).
//
//  * Backend equivalence: a seeded run produces a bit-identical event
//    trace whether the engine's pending set is the binary heap or the
//    calendar queue (MachineOptions::sim_queue).
//  * First-touch channel setup: ugni::Nic::get_or_connect establishes the
//    SMSG channel pair lazily, charges the initiator the exact two-mailbox
//    registration bill once, and is free afterwards.
//  * Mailbox accounting: Nic::mailbox_bytes()/Domain totals reflect only
//    established channels (and shrink again on GNI_EpDestroy) — the basis
//    of the flat-memory claim at 153,216 PEs.
//  * 100k-PE smoke: a ring exchange at 100,000 PEs completes with mailbox
//    bytes/PE at the same small first-touch ceiling as a 1k-PE job.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "converse/machine.hpp"
#include "gemini/machine_config.hpp"
#include "lrts/runtime.hpp"
#include "lrts/ugni_layer.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "trace/events.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt {
namespace {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::LayerKind;
using converse::MachineOptions;

// -------------------------------------------------- backend equivalence ----

/// Seeded faulty k-neighbor on the uGNI layer; returns the full event
/// trace CSV.  The workload exercises SMSG, rendezvous, credit stalls and
/// retries — and with `all_subsystems`, aggregation and flow control on
/// top — so any divergence in event order between queue backends or
/// engine shard counts shows up as a trace mismatch.
std::string traced_run(sim::QueueKind queue, int shards = 1,
                       bool all_subsystems = false, bool arena = true,
                       bool flat_dispatch = true) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  MachineOptions o;
  // One PE per node so shard counts up to 8 stay unclamped (shards are
  // node slabs; 12 nodes cover the {1, 2, 8} matrix).
  o.pes = 12;
  o.pes_per_node = 1;
  o.sim_queue = queue;
  o.sim_shards = shards;
  o.sim_arena = arena;
  o.flat_dispatch = flat_dispatch;
  o.fault.enabled = true;
  o.fault.seed = 0x5CA1E;
  o.fault.p_smsg_error = 0.2;
  o.fault.p_post_error = 0.2;
  if (all_subsystems) {
    o.aggregation.enable = true;
    o.flow.enable = true;
    o.flow.adaptive_routing = true;
  }
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  EXPECT_EQ(m->engine().queue_kind(), queue);
  EXPECT_EQ(m->engine().shards(), shards);
  const int pes = o.pes;
  std::vector<int> received(static_cast<std::size_t>(pes), 0);
  int h = m->register_handler([&](void* msg) {
    received[static_cast<std::size_t>(CmiMyPe())]++;
    CmiFree(msg);
  });
  const std::uint32_t small = 256 + kCmiHeaderBytes;
  const std::uint32_t large = (256u << 10) + kCmiHeaderBytes;
  for (int pe = 0; pe < pes; ++pe) {
    m->start(pe, [&m, pe, pes, small, large, h] {
      for (int i = 0; i < 8; ++i) {
        const std::uint32_t total = (i % 4 == 3) ? large : small;
        for (int dest : {(pe + 1) % pes, (pe + pes - 1) % pes}) {
          void* msg = CmiAlloc(total);
          CmiSetHandler(msg, h);
          CmiSyncSendAndFree(dest, total, msg);
        }
      }
    });
  }
  m->run();
  trace::set_tracer(nullptr);
  for (int pe = 0; pe < pes; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 16) << "pe " << pe;
  }
  std::ostringstream csv;
  tracer.write_csv(csv);
  return csv.str();
}

TEST(QueueBackends, SeededTraceIsBitIdenticalAcrossBackends) {
  std::string heap = traced_run(sim::QueueKind::kHeap);
  std::string cal = traced_run(sim::QueueKind::kCalendar);
  EXPECT_FALSE(heap.empty());
  EXPECT_EQ(heap, cal);
}

// ------------------------------------------------- sharded determinism ----

/// The replay drive's whole-machine determinism claim: partitioning the
/// pending set must not change anything observable.  The seeded faulty
/// run traces bit-identically across shard counts and both queue
/// backends.
TEST(ShardedReplay, SeededTraceIsBitIdenticalAcrossShardCounts) {
  const std::string reference = traced_run(sim::QueueKind::kHeap, 1);
  EXPECT_FALSE(reference.empty());
  for (sim::QueueKind queue :
       {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
    for (int shards : {1, 2, 8}) {
      EXPECT_EQ(reference, traced_run(queue, shards))
          << "queue=" << sim::to_string(queue) << " shards=" << shards;
    }
  }
}

/// The hot-path overhaul's ground rule: the slab-recycling event arena
/// and the flat kind-table dispatch are host-side optimizations ONLY.
/// The seeded all-subsystems trace must be byte-identical with either
/// (or both) turned off — any divergence means a virtual charge or an
/// event ordering leaked out of the host layer.
TEST(HotPath, ArenaAndFlatDispatchTraceIsBitIdentical) {
  const std::string reference = traced_run(
      sim::QueueKind::kHeap, 1, /*all_subsystems=*/true);
  EXPECT_FALSE(reference.empty());
  struct Mode {
    bool arena;
    bool flat;
  };
  for (Mode mode : {Mode{false, true}, Mode{true, false}, Mode{false, false}}) {
    for (sim::QueueKind queue :
         {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
      EXPECT_EQ(reference, traced_run(queue, 1, true, mode.arena, mode.flat))
          << "queue=" << sim::to_string(queue) << " arena=" << mode.arena
          << " flat_dispatch=" << mode.flat;
    }
  }
  // And across shard counts with both off — the sharded drive must not
  // depend on the arena's recycling for its ordering either.
  EXPECT_EQ(reference,
            traced_run(sim::QueueKind::kCalendar, 8, true, false, false));
}

/// Same matrix with every optional subsystem armed — faults, aggregation
/// and congestion control all schedule their own timers and reroute
/// traffic, so this is the adversarial case for cross-shard ordering.
TEST(ShardedReplay, AllSubsystemsTraceIsBitIdenticalAcrossShardCounts) {
  const std::string reference =
      traced_run(sim::QueueKind::kHeap, 1, /*all_subsystems=*/true);
  EXPECT_FALSE(reference.empty());
  for (sim::QueueKind queue :
       {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
    for (int shards : {2, 8}) {
      EXPECT_EQ(reference, traced_run(queue, shards, true))
          << "queue=" << sim::to_string(queue) << " shards=" << shards;
    }
  }
}

// ------------------------------------------------- first-touch channels ----

/// Minimal two-NIC harness with the per-NIC defaults a machine layer sets
/// in init_pe (rx/tx CQs + mailbox geometry), so get_or_connect has
/// everything it needs.
class LazyConnectFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(8), gemini::MachineConfig{});
    dom_ = std::make_unique<ugni::Domain>(*net_);
    for (int i = 0; i < 2; ++i) {
      ctx_[i] = std::make_unique<sim::Context>(engine_.scheduler(), i);
      ASSERT_EQ(ugni::GNI_CdmAttach(dom_.get(), i, i, &nic_[i]),
                ugni::GNI_RC_SUCCESS);
      ASSERT_EQ(ugni::GNI_CqCreate(nic_[i], 1024, &rx_cq_[i]),
                ugni::GNI_RC_SUCCESS);
      ASSERT_EQ(ugni::GNI_CqCreate(nic_[i], 1024, &tx_cq_[i]),
                ugni::GNI_RC_SUCCESS);
      nic_[i]->set_smsg_rx_cq(rx_cq_[i]);
      nic_[i]->set_default_tx_cq(tx_cq_[i]);
      ugni::gni_smsg_attr_t attr;  // defaults: 1024 max, 8 credits
      nic_[i]->set_smsg_attr(attr);
    }
  }

  /// Two mailboxes' worth of pinned bytes for the default geometry
  /// (payload cap + 16 B system header, times the credit depth).
  std::uint64_t mailbox_bytes_per_channel() const {
    return 8ull * (1024 + 16);
  }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<ugni::Domain> dom_;
  std::unique_ptr<sim::Context> ctx_[2];
  ugni::gni_nic_handle_t nic_[2] = {};
  ugni::gni_cq_handle_t rx_cq_[2] = {};
  ugni::gni_cq_handle_t tx_cq_[2] = {};
};

TEST_F(LazyConnectFixture, FirstTouchChargesExactSetupCostOnce) {
  sim::ScopedContext guard(*ctx_[0]);
  const SimTime before = ctx_[0]->now();
  bool established = false;
  ugni::gni_ep_handle_t ep = nic_[0]->get_or_connect(1, &established);
  ASSERT_NE(ep, nullptr);
  EXPECT_TRUE(established);
  // The whole bill — both directions' mailbox registrations — lands on the
  // initiator's clock, deterministically.
  const SimTime bill =
      2 * dom_->config().reg_cost(mailbox_bytes_per_channel());
  EXPECT_EQ(ctx_[0]->now() - before, bill);

  // Second touch: same endpoint, no charge, not "established" again.
  const SimTime t1 = ctx_[0]->now();
  established = true;
  EXPECT_EQ(nic_[0]->get_or_connect(1, &established), ep);
  EXPECT_FALSE(established);
  EXPECT_EQ(ctx_[0]->now(), t1);
}

TEST_F(LazyConnectFixture, ConnectWiresBothDirections) {
  sim::ScopedContext guard(*ctx_[0]);
  ASSERT_NE(nic_[0]->get_or_connect(1), nullptr);
  EXPECT_TRUE(nic_[0]->connected(1));
  EXPECT_TRUE(nic_[1]->connected(0));
  EXPECT_EQ(nic_[0]->connected_peers(), 1u);
  EXPECT_EQ(nic_[1]->connected_peers(), 1u);
  // The reverse endpoint is immediately usable by the peer.
  EXPECT_NE(nic_[1]->ep_for_peer(0), nullptr);
}

TEST_F(LazyConnectFixture, UnknownPeerFailsWithoutSideEffects) {
  sim::ScopedContext guard(*ctx_[0]);
  const SimTime before = ctx_[0]->now();
  EXPECT_EQ(nic_[0]->get_or_connect(77), nullptr);
  EXPECT_EQ(ctx_[0]->now(), before);
  EXPECT_EQ(nic_[0]->connected_peers(), 0u);
  EXPECT_EQ(dom_->total_mailbox_bytes(), 0u);
}

TEST_F(LazyConnectFixture, MailboxAccountingTracksEstablishedChannels) {
  sim::ScopedContext guard(*ctx_[0]);
  EXPECT_EQ(dom_->total_mailbox_bytes(), 0u);
  EXPECT_EQ(nic_[0]->mailbox_bytes(), 0u);

  ASSERT_NE(nic_[0]->get_or_connect(1), nullptr);
  const std::uint64_t per_mailbox = mailbox_bytes_per_channel();
  EXPECT_EQ(nic_[0]->mailbox_bytes(), per_mailbox);
  EXPECT_EQ(nic_[1]->mailbox_bytes(), per_mailbox);
  EXPECT_EQ(dom_->total_mailbox_bytes(), 2 * per_mailbox);
  EXPECT_EQ(dom_->smsg_channels(), 2u);

  // Tearing the endpoints down releases exactly what was pinned.
  ASSERT_EQ(ugni::GNI_EpDestroy(nic_[0]->ep_for_peer(1)),
            ugni::GNI_RC_SUCCESS);
  EXPECT_EQ(nic_[0]->mailbox_bytes(), 0u);
  EXPECT_EQ(dom_->total_mailbox_bytes(), per_mailbox);
  ASSERT_EQ(ugni::GNI_EpDestroy(nic_[1]->ep_for_peer(0)),
            ugni::GNI_RC_SUCCESS);
  EXPECT_EQ(nic_[1]->mailbox_bytes(), 0u);
  EXPECT_EQ(dom_->total_mailbox_bytes(), 0u);
  EXPECT_EQ(dom_->smsg_channels(), 0u);
}

// --------------------------------------------------------- 100k-PE ring ----

/// Ring exchange: every PE sends `msgs` small messages to its right
/// neighbor.  Returns mailbox bytes per PE after the run.
double ring_mailbox_bytes_per_pe(int pes, int msgs) {
  MachineOptions o;
  o.pes = pes;
  o.pes_per_node = 1;
  o.sim_queue = sim::QueueKind::kCalendar;
  o.use_pxshm = false;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  std::uint64_t received = 0;
  int h = m->register_handler([&](void* msg) {
    ++received;
    CmiFree(msg);
  });
  const std::uint32_t total = 64 + kCmiHeaderBytes;
  for (int pe = 0; pe < pes; ++pe) {
    m->start(pe, [&m, pe, pes, msgs, total, h] {
      for (int i = 0; i < msgs; ++i) {
        void* msg = CmiAlloc(total);
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree((pe + 1) % pes, total, msg);
      }
    });
  }
  m->run();
  EXPECT_EQ(received, static_cast<std::uint64_t>(pes) * msgs);
  auto* layer = dynamic_cast<lrts::UgniLayer*>(&m->layer());
  EXPECT_NE(layer, nullptr);
  return static_cast<double>(layer->total_mailbox_bytes()) / pes;
}

TEST(FullMachineScale, HundredKPeRingHasFlatMailboxFootprint) {
  // Per PE a ring pins exactly two mailboxes (to the right neighbor,
  // from the left), regardless of job size: credits x (cap + header).
  // At >16k PEs the SMSG cap drops to smsg_max_bytes/8 = 128 B.
  const double small = ring_mailbox_bytes_per_pe(1024, 2);
  const double big = ring_mailbox_bytes_per_pe(100'000, 2);
  const gemini::MachineConfig mc;
  const double cap_small = mc.smsg_max_for_job(1024);
  const double cap_big = mc.smsg_max_for_job(100'000);
  EXPECT_EQ(small, 2.0 * mc.smsg_mailbox_credits * (cap_small + 16));
  EXPECT_EQ(big, 2.0 * mc.smsg_mailbox_credits * (cap_big + 16));
  // The per-PE footprint must not grow with the job — the O(N) eager
  // mailbox wall of paper §II-B is gone.  (With the smaller large-job
  // SMSG cap it actually shrinks.)
  EXPECT_LE(big, small);
  EXPECT_LE(big, 4096.0);  // hard ceiling: a page per PE
}

}  // namespace
}  // namespace ugnirt
