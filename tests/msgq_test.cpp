// MSGQ: the per-node shared-queue alternative to SMSG (paper §II-B) —
// API-level semantics plus the machine-layer integration (use_msgq mode).
#include <gtest/gtest.h>

#include <cstring>

#include "lrts/runtime.hpp"
#include "lrts/ugni_layer.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "ugni/msgq.hpp"

namespace ugnirt {
namespace {

// -------------------------------------------------------------- API level ----

class MsgqFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(4), gemini::MachineConfig{});
    dom_ = std::make_unique<ugni::Domain>(*net_);
    for (int i = 0; i < 3; ++i) {
      ctx_.push_back(std::make_unique<sim::Context>(engine_.scheduler(), i));
      sim::ScopedContext g(*ctx_.back());
      ASSERT_EQ(ugni::GNI_CdmAttach(dom_.get(), i, i, &nic_[i]),
                ugni::GNI_RC_SUCCESS);
      ASSERT_EQ(ugni::GNI_MsgqInit(nic_[i], 4096, &msgq_[i]),
                ugni::GNI_RC_SUCCESS);
    }
  }

  sim::Context& ctx(int i) { return *ctx_[static_cast<std::size_t>(i)]; }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<ugni::Domain> dom_;
  std::vector<std::unique_ptr<sim::Context>> ctx_;
  ugni::gni_nic_handle_t nic_[3] = {};
  ugni::gni_msgq_handle_t msgq_[3] = {};
};

TEST_F(MsgqFixture, DeliversFromMultiplePeersWithoutPairSetup) {
  // Senders 1 and 2 hit receiver 0's shared queue with zero channel setup.
  for (int from : {1, 2}) {
    sim::ScopedContext g(ctx(from));
    char payload[16];
    std::snprintf(payload, sizeof(payload), "from-%d", from);
    ASSERT_EQ(ugni::GNI_MsgqSend(nic_[from], 0, payload, 16, nullptr, 0,
                                 static_cast<std::uint8_t>(from)),
              ugni::GNI_RC_SUCCESS);
  }
  sim::ScopedContext g(ctx(0));
  ctx(0).wait_until(10'000'000);
  int got = 0;
  for (;;) {
    void* data = nullptr;
    std::uint32_t len = 0;
    std::uint8_t tag = 0;
    std::int32_t src = -1;
    if (ugni::GNI_MsgqProgress(msgq_[0], &data, &len, &tag, &src) !=
        ugni::GNI_RC_SUCCESS) {
      break;
    }
    EXPECT_EQ(len, 16u);
    EXPECT_EQ(tag, src);
    char expect[16];
    std::snprintf(expect, sizeof(expect), "from-%d", src);
    EXPECT_EQ(std::memcmp(data, expect, 7), 0);
    ++got;
  }
  EXPECT_EQ(got, 2);
  EXPECT_EQ(msgq_[0]->used_bytes(), 0u);
}

TEST_F(MsgqFixture, BackpressureWhenPoolFull) {
  sim::ScopedContext g(ctx(1));
  std::vector<std::uint8_t> big(1500);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    auto rc = ugni::GNI_MsgqSend(nic_[1], 0, big.data(),
                                 static_cast<std::uint32_t>(big.size()),
                                 nullptr, 0, 1);
    if (rc != ugni::GNI_RC_SUCCESS) {
      EXPECT_EQ(rc, ugni::GNI_RC_NOT_DONE);
      break;
    }
    ++accepted;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 10);  // pool (4096) cannot hold 10 x 1500

  // Draining frees the pool for more traffic.
  {
    sim::ScopedContext g0(ctx(0));
    ctx(0).wait_until(10'000'000);
    void* data;
    std::uint32_t len;
    std::uint8_t tag;
    std::int32_t src;
    ASSERT_EQ(ugni::GNI_MsgqProgress(msgq_[0], &data, &len, &tag, &src),
              ugni::GNI_RC_SUCCESS);
  }
  EXPECT_EQ(ugni::GNI_MsgqSend(nic_[1], 0, big.data(),
                               static_cast<std::uint32_t>(big.size()),
                               nullptr, 0, 1),
            ugni::GNI_RC_SUCCESS);
}

TEST_F(MsgqFixture, OversizedAndInvalidUses) {
  sim::ScopedContext g(ctx(1));
  std::vector<std::uint8_t> huge(8192);
  EXPECT_EQ(ugni::GNI_MsgqSend(nic_[1], 0, huge.data(), 8192, nullptr, 0, 0),
            ugni::GNI_RC_SIZE_ERROR);
  // Second init on the same NIC is rejected.
  ugni::gni_msgq_handle_t dup = nullptr;
  EXPECT_EQ(ugni::GNI_MsgqInit(nic_[1], 4096, &dup),
            ugni::GNI_RC_INVALID_STATE);
  // Sending to a NIC without a queue fails cleanly.
  ugni::gni_nic_handle_t bare = nullptr;
  ASSERT_EQ(ugni::GNI_CdmAttach(dom_.get(), 9, 3, &bare),
            ugni::GNI_RC_SUCCESS);
  char c = 0;
  EXPECT_EQ(ugni::GNI_MsgqSend(nic_[1], 9, &c, 1, nullptr, 0, 0),
            ugni::GNI_RC_INVALID_STATE);
}

TEST_F(MsgqFixture, SlowerThanSmsgPerMessage) {
  // The §II-B trade: per-message latency is worse than SMSG.
  SimTime send_at;
  {
    sim::ScopedContext g(ctx(1));
    send_at = ctx(1).now();
    char c = 7;
    ASSERT_EQ(ugni::GNI_MsgqSend(nic_[1], 0, &c, 1, nullptr, 0, 0),
              ugni::GNI_RC_SUCCESS);
  }
  SimTime arrival = msgq_[0]->next_arrival();
  gemini::MachineConfig mc;
  // Strictly above the SMSG wire floor for a 1-byte message.
  SimTime smsg_floor = mc.smsg_cpu_send_ns + mc.smsg_wire_startup_ns;
  EXPECT_GT(arrival - send_at, smsg_floor);
}

// ------------------------------------------------------------ layer level ----

TEST(MsgqLayer, EndToEndDeliveryInMsgqMode) {
  converse::MachineOptions o;
  o.pes = 8;
  o.use_msgq = true;
  o.use_pxshm = false;
  o.pes_per_node = 1;
  auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
  int got = 0;
  int h = m->register_handler([&](void* msg) {
    ++got;
    converse::CmiFree(msg);
  });
  for (int pe = 1; pe < 8; ++pe) {
    m->start(pe, [&, h] {
      for (std::uint32_t payload : {16u, 512u, 65536u}) {
        void* msg = converse::CmiAlloc(payload + converse::kCmiHeaderBytes);
        converse::CmiSetHandler(msg, h);
        converse::CmiSyncSendAndFree(0, payload + converse::kCmiHeaderBytes,
                                     msg);
      }
    });
  }
  m->run();
  EXPECT_EQ(got, 21);
}

TEST(MsgqLayer, NoMailboxMemoryCommitted) {
  auto run = [](bool msgq) {
    converse::MachineOptions o;
    o.pes = 16;
    o.use_msgq = msgq;
    o.use_pxshm = false;
    o.pes_per_node = 1;
    auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
    int h = m->register_handler(
        [&](void* msg) { converse::CmiFree(msg); });
    m->start(0, [&, h] {
      for (int dest = 1; dest < 16; ++dest) {
        void* msg = converse::CmiAlloc(converse::kCmiHeaderBytes + 64);
        converse::CmiSetHandler(msg, h);
        converse::CmiSyncSendAndFree(dest, converse::kCmiHeaderBytes + 64,
                                     msg);
      }
    });
    m->run();
    auto* layer = dynamic_cast<lrts::UgniLayer*>(&m->layer());
    return layer->total_mailbox_bytes();
  };
  EXPECT_GT(run(false), 0u);  // SMSG: per-pair mailboxes pile up
  EXPECT_EQ(run(true), 0u);   // MSGQ: none at all
}

TEST(MsgqLayer, MsgqModeSlowerThanSmsgMode) {
  auto one_way = [](bool msgq) {
    converse::MachineOptions o;
    o.pes = 2;
    o.use_msgq = msgq;
    o.pes_per_node = 1;
    auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
    int legs = 0;
    SimTime t0 = 0, t1 = 0;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      ++legs;
      if (legs == 2) t0 = converse::Machine::running()->current_pe().ctx().now();
      if (legs == 10) {
        t1 = converse::Machine::running()->current_pe().ctx().now();
        converse::CmiFree(msg);
        return;
      }
      converse::CmiSetHandler(msg, h);
      converse::CmiSyncSendAndFree(1 - converse::CmiMyPe(),
                                   converse::header_of(msg)->size, msg);
    });
    m->start(0, [&, h] {
      void* msg = converse::CmiAlloc(converse::kCmiHeaderBytes + 64);
      converse::CmiSetHandler(msg, h);
      converse::CmiSyncSendAndFree(1, converse::kCmiHeaderBytes + 64, msg);
    });
    m->run();
    return (t1 - t0) / 8;
  };
  EXPECT_GT(one_way(true), one_way(false));
}

}  // namespace
}  // namespace ugnirt
