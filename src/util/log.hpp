// Minimal leveled logger.  Off by default; enable with UGNIRT_LOG=debug.
#pragma once

#include <sstream>
#include <string>

namespace ugnirt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_threshold());
}

}  // namespace ugnirt

#define UGNIRT_LOG(level, expr)                                \
  do {                                                         \
    if (::ugnirt::log_enabled(level)) {                        \
      std::ostringstream ugnirt_log_ss;                        \
      ugnirt_log_ss << expr;                                   \
      ::ugnirt::log_message(level, ugnirt_log_ss.str());       \
    }                                                          \
  } while (0)

#define UGNIRT_DEBUG(expr) UGNIRT_LOG(::ugnirt::LogLevel::kDebug, expr)
#define UGNIRT_INFO(expr) UGNIRT_LOG(::ugnirt::LogLevel::kInfo, expr)
#define UGNIRT_WARN(expr) UGNIRT_LOG(::ugnirt::LogLevel::kWarn, expr)
#define UGNIRT_ERROR(expr) UGNIRT_LOG(::ugnirt::LogLevel::kError, expr)
