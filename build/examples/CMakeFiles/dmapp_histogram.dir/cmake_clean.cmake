file(REMOVE_RECURSE
  "CMakeFiles/dmapp_histogram.dir/dmapp_histogram.cpp.o"
  "CMakeFiles/dmapp_histogram.dir/dmapp_histogram.cpp.o.d"
  "dmapp_histogram"
  "dmapp_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmapp_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
