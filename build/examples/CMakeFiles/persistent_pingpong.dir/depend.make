# Empty dependencies file for persistent_pingpong.
# This may be replaced when dependencies are built.
