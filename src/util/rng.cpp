#include "util/rng.hpp"

#include <cmath>

namespace ugnirt {

double Rng::next_exponential(double mean) {
  // Inverse-CDF sampling; clamp away from 0 to avoid log(0).
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace ugnirt
