file(REMOVE_RECURSE
  "CMakeFiles/fig12_nqueens_profile.dir/fig12_nqueens_profile.cpp.o"
  "CMakeFiles/fig12_nqueens_profile.dir/fig12_nqueens_profile.cpp.o.d"
  "fig12_nqueens_profile"
  "fig12_nqueens_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nqueens_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
