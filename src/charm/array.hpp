// Migratable chare arrays.
//
// CHARM++ applications "consist of C++ objects organized into indexed
// collections"; the runtime "automatically maps and balances these objects
// to processors" (paper §III-A).  This module provides the 1-D indexed
// collection: elements live on PEs, asynchronous method invocations are
// routed by a location map, and elements can migrate between PEs under a
// load balancer, paying a modeled transfer cost for their packed state.
//
// Simulation shortcut (documented in DESIGN.md): the location map is
// replicated and updated synchronously at migration points rather than via
// home-PE forwarding — migrations only happen at load-balancing barriers in
// the paper's applications, where the real runtime also reaches a globally
// consistent view.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "charm/charm.hpp"

namespace ugnirt::charm {

/// Base class for array elements.
class ArrayElement {
 public:
  virtual ~ArrayElement() = default;

  /// Asynchronous method invocation entry point.
  virtual void receive(int method, const void* payload,
                       std::uint32_t bytes) = 0;

  /// Size of the element's migratable state in bytes (charged when the
  /// element moves during load balancing).
  virtual std::uint32_t pack_size() const { return 1024; }

  int index() const { return index_; }

 private:
  friend class ArrayManager;
  int index_ = -1;
};

/// One indexed collection of migratable elements.
class ArrayManager {
 public:
  using Factory = std::function<std::unique_ptr<ArrayElement>(int idx)>;

  /// Create the array with `n` elements placed block-wise across PEs.
  /// Must be constructed before machine().run(); elements are created
  /// lazily on first use of each PE.
  ArrayManager(Charm& charm, int n, Factory factory);

  int size() const { return n_; }
  int location_of(int idx) const {
    return location_[static_cast<std::size_t>(idx)];
  }

  /// Asynchronously invoke `method` on element `idx` with a payload.
  /// Callable from any PE handler context.
  void invoke(int idx, int method, const void* payload, std::uint32_t bytes);

  /// Invoke on every element (one message per element).
  void invoke_all(int method, const void* payload, std::uint32_t bytes);

  /// Measured load (charged app-ns) per element since the last reset.
  const std::vector<double>& measured_load() const { return load_; }
  void reset_load();

  /// Apply a new element->PE assignment.  Must be called at a global
  /// synchronization point (no invocations in flight for this array).
  /// Charges each moving element's pack_size transfer to the simulation
  /// clock via per-PE contexts and returns the number of migrations.
  int migrate_to(const std::vector<int>& new_location);

  /// Direct element access for local setup/inspection in drivers.
  ArrayElement* element(int idx) {
    return elements_[static_cast<std::size_t>(idx)].get();
  }

 private:
  void deliver(int idx, int method, const void* payload, std::uint32_t bytes);

  Charm* charm_;
  int n_;
  int handler_ = -1;
  std::vector<std::unique_ptr<ArrayElement>> elements_;
  std::vector<int> location_;
  std::vector<double> load_;  // app-ns per element
};

}  // namespace ugnirt::charm
